package service

// Shard mode. The paper's complexity bound (Theorem 4.2: one document
// costs O(|P|·|dom|), independent of everything else) makes wrapper
// serving embarrassingly shardable BY DOCUMENT: a front tier hashes
// each document's content and forwards it to the worker that owns that
// point of a consistent-hash ring. Ownership by CONTENT hash (not by
// tenant or round-robin) is what makes the per-worker dedup cache
// partition: each worker sees only its slice of the document universe,
// so N workers hold N disjoint cache shards — the classic
// consistent-hashing win — and duplicated crawl traffic concentrates
// its repeats on the worker that already has the arena and the fused
// result memo. Workers optionally run with -shard-of i/n, an ownership
// guard that rejects misrouted documents (421) instead of silently
// double-caching them.
//
// The ring places each shard at RingReplicas pseudo-random points
// (SHA-256 of "shard-<i>#<replica>") of the 64-bit key space; a key is
// owned by the first shard point at or clockwise after it. Balance
// improves with replicas (±20% across 4 workers is the tested bound);
// adding or removing one worker moves only the keys whose closest
// point belonged to it — minimal movement, verified by property test.
//
// The front tier (mdlogd -front w1,w2,...) is stateless: it fans
// wrapper CRUD to every worker, routes extraction by content hash and
// document sessions by session-id hash, splits batch envelopes into
// per-worker sub-batches, and applies per-worker bounded in-flight
// backpressure — at the bound it sheds with 503 + Retry-After rather
// than queueing without limit. Health probes (plus passive transport-
// failure detection) take a worker out of the ring; draining does the
// same administratively (POST /fleet/{i}/drain) while in-flight
// requests finish.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultRingReplicas is the virtual-node count per shard; 128 points
// per worker keeps the 4-worker balance well inside ±20%.
const DefaultRingReplicas = 128

// Ring is a consistent-hash ring over n shards, identified by index
// 0..n-1. The shard names hashed into the ring are canonical
// ("shard-<i>"), so a front tier over n workers and a worker booted
// with -shard-of i/n agree on ownership by construction. Immutable
// after construction; all methods are safe for concurrent use.
type Ring struct {
	n      int
	points []ringPoint // sorted by hash
}

// ringPoint is one virtual node.
type ringPoint struct {
	h     uint64
	shard int
}

// NewRing builds a ring over n shards with the given virtual-node
// count per shard (<= 0: DefaultRingReplicas).
func NewRing(n, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultRingReplicas
	}
	r := &Ring{n: n, points: make([]ringPoint, 0, n*replicas)}
	for s := 0; s < n; s++ {
		for v := 0; v < replicas; v++ {
			sum := sha256.Sum256([]byte(fmt.Sprintf("shard-%d#%d", s, v)))
			var h uint64
			for i := 0; i < 8; i++ {
				h = h<<8 | uint64(sum[i])
			}
			r.points = append(r.points, ringPoint{h: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.n }

// Lookup returns the shard owning key: the shard of the first ring
// point at or clockwise after key.
func (r *Ring) Lookup(key uint64) int {
	return r.LookupAlive(key, nil)
}

// LookupAlive is Lookup skipping shards for which alive reports false
// (nil: all alive) — the front tier's failover walk: a dead worker's
// keys spill to the next points clockwise, which by construction
// belong to a near-uniform mix of the surviving shards. Returns -1
// when no shard is alive.
func (r *Ring) LookupAlive(key uint64, alive func(int) bool) int {
	if len(r.points) == 0 {
		return -1
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= key })
	for probed := 0; probed < len(r.points); probed++ {
		p := r.points[(i+probed)%len(r.points)]
		if alive == nil || alive(p.shard) {
			return p.shard
		}
	}
	return -1
}

// KeyOfSession maps a document-session id onto the ring key space, so
// every request for one session id routes to the same worker.
func KeyOfSession(id string) uint64 {
	return HashDoc([]byte("session:" + id)).ringKey()
}

// ---------------------------------------------------------------------
// Front tier.

// FrontConfig boots a Front (see the package comment of this file).
type FrontConfig struct {
	// Workers are the ordered worker base URLs ("http://host:port");
	// index i is shard i of len(Workers).
	Workers []string `json:"workers"`
	// WorkerInFlight bounds concurrently forwarded requests per worker
	// (0: DefaultFrontWorkerInFlight; < 0: unbounded). At the bound the
	// front sheds with 503 + Retry-After.
	WorkerInFlight int `json:"worker_in_flight,omitempty"`
	// HealthIntervalMS is the health-probe cadence (0:
	// DefaultFrontHealthIntervalMS).
	HealthIntervalMS int `json:"health_interval_ms,omitempty"`
	// MaxBodyBytes bounds one request body (0: DefaultMaxBodyBytes;
	// < 0: unbounded).
	MaxBodyBytes int64 `json:"max_body_bytes,omitempty"`
	// RingReplicas is the virtual-node count per worker (0:
	// DefaultRingReplicas).
	RingReplicas int `json:"ring_replicas,omitempty"`
	// ShutdownGraceMS is the graceful-shutdown window (0:
	// DefaultShutdownGraceMS).
	ShutdownGraceMS int `json:"shutdown_grace_ms,omitempty"`
}

// Front-tier defaults.
const (
	// DefaultFrontWorkerInFlight bounds forwarded requests per worker.
	DefaultFrontWorkerInFlight = 32
	// DefaultFrontHealthIntervalMS is the health-probe cadence.
	DefaultFrontHealthIntervalMS = 1000
)

// frontWorker is one worker's routing state and counters.
type frontWorker struct {
	index int
	base  string // base URL, no trailing slash
	sem   chan struct{}

	healthy  atomic.Bool
	draining atomic.Bool

	forwarded atomic.Int64
	errors    atomic.Int64
	shed      atomic.Int64
}

// routable reports whether the ring may send new work to the worker.
func (wk *frontWorker) routable() bool { return wk.healthy.Load() && !wk.draining.Load() }

// acquire takes a forwarding slot without blocking; release with
// wk.release. ok=false means the worker is at its in-flight bound.
func (wk *frontWorker) acquire() bool {
	if wk.sem == nil {
		return true
	}
	select {
	case wk.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (wk *frontWorker) release() {
	if wk.sem != nil {
		<-wk.sem
	}
}

// Front is the shard-mode front tier: an HTTP handler that owns no
// wrappers and no documents, only the ring, the worker table, and the
// backpressure bounds. Create with NewFront; all methods are safe for
// concurrent use.
type Front struct {
	workers []*frontWorker
	ring    *Ring
	client  *http.Client
	maxBody int64
	grace   time.Duration
	probeMS time.Duration
	mux     *http.ServeMux
	started time.Time

	probeOnce sync.Once

	requests atomic.Int64
	rejected atomic.Int64
}

// NewFront builds the front tier over the configured workers. All
// workers start healthy; the probe loop (started by Serve, or
// StartProbes for an embedded handler) and passive transport failures
// adjust from there.
func NewFront(cfg FrontConfig) (*Front, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("service: front tier needs at least one worker URL")
	}
	f := &Front{
		ring:    NewRing(len(cfg.Workers), cfg.RingReplicas),
		client:  &http.Client{},
		maxBody: cfg.MaxBodyBytes,
		grace:   time.Duration(cfg.ShutdownGraceMS) * time.Millisecond,
		probeMS: time.Duration(cfg.HealthIntervalMS) * time.Millisecond,
		started: time.Now(),
	}
	if f.maxBody == 0 {
		f.maxBody = DefaultMaxBodyBytes
	}
	if f.grace == 0 {
		f.grace = DefaultShutdownGraceMS * time.Millisecond
	}
	if f.probeMS == 0 {
		f.probeMS = DefaultFrontHealthIntervalMS * time.Millisecond
	}
	inFlight := cfg.WorkerInFlight
	if inFlight == 0 {
		inFlight = DefaultFrontWorkerInFlight
	}
	for i, base := range cfg.Workers {
		base = strings.TrimRight(base, "/")
		if base == "" {
			return nil, fmt.Errorf("service: front worker %d has an empty URL", i)
		}
		wk := &frontWorker{index: i, base: base}
		if inFlight > 0 {
			wk.sem = make(chan struct{}, inFlight)
		}
		wk.healthy.Store(true)
		f.workers = append(f.workers, wk)
	}
	f.mux = http.NewServeMux()
	f.routes()
	return f, nil
}

func (f *Front) routes() {
	f.mux.HandleFunc("GET /healthz", f.handleHealthz)
	f.mux.HandleFunc("GET /stats", f.handleStats)
	f.mux.HandleFunc("GET /metrics", f.handleMetrics)
	f.mux.HandleFunc("GET /fleet", f.handleFleet)
	f.mux.HandleFunc("POST /fleet/{index}/drain", f.handleDrain(true))
	f.mux.HandleFunc("POST /fleet/{index}/undrain", f.handleDrain(false))

	// Wrapper CRUD: mutations fan out to every worker (the fleet's
	// registries must agree for content routing to be tenant-invisible),
	// reads proxy to the first routable worker.
	f.mux.HandleFunc("PUT /wrappers/{name}", f.handleFanMutation)
	f.mux.HandleFunc("DELETE /wrappers/{name}", f.handleFanMutation)
	f.mux.HandleFunc("GET /wrappers", f.handleProxyRead)
	f.mux.HandleFunc("GET /wrappers/{name}", f.handleProxyRead)

	// Extraction routes by document content hash.
	f.mux.HandleFunc("POST /extract/{name}", f.handleContentRouted)
	f.mux.HandleFunc("POST /extractall", f.handleContentRouted)
	f.mux.HandleFunc("POST /batch/{name}", f.handleBatchSplit)
	f.mux.HandleFunc("POST /batchall", f.handleBatchSplit)

	// Document sessions route by session id, so a session's lifecycle
	// stays on one worker.
	f.mux.HandleFunc("PUT /documents/{id}", f.handleSessionRouted)
	f.mux.HandleFunc("GET /documents/{id}", f.handleSessionRouted)
	f.mux.HandleFunc("PATCH /documents/{id}", f.handleSessionRouted)
	f.mux.HandleFunc("DELETE /documents/{id}", f.handleSessionRouted)
	f.mux.HandleFunc("POST /documents/{id}/extractall", f.handleSessionRouted)
}

// Handler returns the front tier's HTTP handler.
func (f *Front) Handler() http.Handler { return f.mux }

// Workers exposes the worker base URLs in shard order.
func (f *Front) Workers() []string {
	out := make([]string, len(f.workers))
	for i, wk := range f.workers {
		out[i] = wk.base
	}
	return out
}

// StartProbes launches the health-probe loop (idempotent). Serve calls
// it; call it directly when embedding Handler elsewhere.
func (f *Front) StartProbes(ctx context.Context) {
	f.probeOnce.Do(func() {
		go func() {
			t := time.NewTicker(f.probeMS)
			defer t.Stop()
			for {
				f.probeAll(ctx)
				select {
				case <-ctx.Done():
					return
				case <-t.C:
				}
			}
		}()
	})
}

// probeAll checks every worker's /healthz once.
func (f *Front) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, wk := range f.workers {
		wg.Add(1)
		go func(wk *frontWorker) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, wk.base+"/healthz", nil)
			if err != nil {
				wk.healthy.Store(false)
				return
			}
			resp, err := f.client.Do(req)
			if err != nil {
				wk.healthy.Store(false)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			wk.healthy.Store(resp.StatusCode == http.StatusOK)
		}(wk)
	}
	wg.Wait()
}

// Serve accepts connections until ctx is canceled (same graceful
// contract as Server.Serve) and runs the health-probe loop alongside.
func (f *Front) Serve(ctx context.Context, ln net.Listener) error {
	f.StartProbes(ctx)
	return serveHandler(ctx, ln, f.mux, f.grace)
}

// ListenAndServe is Serve on a fresh TCP listener bound to addr
// (DefaultAddr if empty).
func (f *Front) ListenAndServe(ctx context.Context, addr string) error {
	if addr == "" {
		addr = DefaultAddr
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return f.Serve(ctx, ln)
}

// pick resolves a ring key to a routable worker, walking clockwise
// past dead or draining ones. ok=false means no worker is routable.
func (f *Front) pick(key uint64) (*frontWorker, bool) {
	idx := f.ring.LookupAlive(key, func(i int) bool { return f.workers[i].routable() })
	if idx < 0 {
		return nil, false
	}
	return f.workers[idx], true
}

// forward sends one request to wk under its in-flight bound and copies
// the worker's response to the client verbatim. Reports whether the
// transport reached the worker (worker-level HTTP errors count as
// reached — they are the worker's answer, not the front's).
func (f *Front) forward(w http.ResponseWriter, r *http.Request, wk *frontWorker, body []byte) {
	if !wk.acquire() {
		wk.shed.Add(1)
		f.rejected.Add(1)
		unavailable(w, 1, "worker %d at forwarding capacity", wk.index)
		return
	}
	defer wk.release()
	resp, err := f.roundTrip(r.Context(), wk, r.Method, r.URL.RequestURI(), r.Header.Get("Content-Type"), body)
	if err != nil {
		wk.errors.Add(1)
		wk.healthy.Store(false)
		writeError(w, http.StatusBadGateway, "worker %d (%s): %v", wk.index, wk.base, err)
		return
	}
	defer resp.Body.Close()
	wk.forwarded.Add(1)
	for _, hk := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(hk); v != "" {
			w.Header().Set(hk, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// roundTrip issues one worker request (requestURI carries the path and
// query verbatim).
func (f *Front) roundTrip(ctx context.Context, wk *frontWorker, method, requestURI, contentType string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, wk.base+requestURI, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	return f.client.Do(req)
}

// readBody reads the (bounded) request body.
func (f *Front) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	rd := r.Body
	if f.maxBody >= 0 {
		rd = http.MaxBytesReader(w, r.Body, f.maxBody)
	}
	body, err := io.ReadAll(rd)
	if err != nil {
		writeError(w, clientErrStatus(err), "reading request: %v", err)
		return nil, false
	}
	return body, true
}

// handleContentRouted forwards a single-document extraction to the
// worker owning the document's content hash.
func (f *Front) handleContentRouted(w http.ResponseWriter, r *http.Request) {
	f.requests.Add(1)
	body, ok := f.readBody(w, r)
	if !ok {
		return
	}
	wk, ok := f.pick(HashDoc(body).ringKey())
	if !ok {
		unavailable(w, 1, "no routable worker")
		return
	}
	f.forward(w, r, wk, body)
}

// handleSessionRouted forwards a document-session request to the
// worker owning the session id, so PUT/PATCH/extract for one id always
// land together.
func (f *Front) handleSessionRouted(w http.ResponseWriter, r *http.Request) {
	f.requests.Add(1)
	body, ok := f.readBody(w, r)
	if !ok {
		return
	}
	wk, ok := f.pick(KeyOfSession(r.PathValue("id")))
	if !ok {
		unavailable(w, 1, "no routable worker")
		return
	}
	f.forward(w, r, wk, body)
}

// handleProxyRead forwards a read to the first routable worker (all
// registries agree, so any worker's answer is the fleet's).
func (f *Front) handleProxyRead(w http.ResponseWriter, r *http.Request) {
	f.requests.Add(1)
	for _, wk := range f.workers {
		if wk.routable() {
			f.forward(w, r, wk, nil)
			return
		}
	}
	unavailable(w, 1, "no routable worker")
}

// handleFanMutation applies a wrapper mutation to EVERY worker. All
// workers must accept for the fleet to stay consistent; a partial
// failure is reported as 502 with the per-worker outcomes (the caller
// retries — mutations are idempotent PUT/DELETE).
func (f *Front) handleFanMutation(w http.ResponseWriter, r *http.Request) {
	f.requests.Add(1)
	body, ok := f.readBody(w, r)
	if !ok {
		return
	}
	type outcome struct {
		status int
		body   []byte
		err    error
	}
	outcomes := make([]outcome, len(f.workers))
	var wg sync.WaitGroup
	for i, wk := range f.workers {
		wg.Add(1)
		go func(i int, wk *frontWorker) {
			defer wg.Done()
			resp, err := f.roundTrip(r.Context(), wk, r.Method, r.URL.RequestURI(), r.Header.Get("Content-Type"), body)
			if err != nil {
				wk.errors.Add(1)
				wk.healthy.Store(false)
				outcomes[i] = outcome{err: err}
				return
			}
			defer resp.Body.Close()
			wk.forwarded.Add(1)
			b, _ := io.ReadAll(resp.Body)
			outcomes[i] = outcome{status: resp.StatusCode, body: b}
		}(i, wk)
	}
	wg.Wait()
	failures := map[string]any{}
	for i, oc := range outcomes {
		if oc.err != nil {
			failures[strconv.Itoa(i)] = oc.err.Error()
		} else if oc.status >= 500 {
			failures[strconv.Itoa(i)] = fmt.Sprintf("status %d: %s", oc.status, strings.TrimSpace(string(oc.body)))
		}
	}
	if len(failures) > 0 {
		writeJSON(w, http.StatusBadGateway, map[string]any{
			"error":   fmt.Sprintf("%d of %d workers failed the mutation", len(failures), len(f.workers)),
			"workers": failures,
		})
		return
	}
	// All workers agreed; emit the first worker's response as the
	// fleet's (4xx compile rejections included — every worker returned
	// the same verdict for the same spec).
	first := outcomes[0]
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(first.status)
	w.Write(first.body)
}

// handleBatchSplit decodes a /batch or /batchall envelope, assigns
// each document to its content-hash owner, forwards one sub-batch per
// worker concurrently, and merges the per-document results back into
// input order. Per-document errors stay per-document; a sub-batch
// whose worker fails maps that failure onto each of its documents.
func (f *Front) handleBatchSplit(w http.ResponseWriter, r *http.Request) {
	f.requests.Add(1)
	body, ok := f.readBody(w, r)
	if !ok {
		return
	}
	ndjson := r.URL.Query().Get("format") == "ndjson" ||
		strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
	var req batchRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid batch request: %v", err)
		return
	}
	// Group document indices by owning worker.
	groups := map[*frontWorker][]int{}
	var unroutable []int
	for i, d := range req.Docs {
		wk, ok := f.pick(HashDoc([]byte(d.HTML)).ringKey())
		if !ok {
			unroutable = append(unroutable, i)
			continue
		}
		groups[wk] = append(groups[wk], i)
	}
	items := make([]map[string]any, len(req.Docs))
	fail := func(i int, msg string) {
		item := map[string]any{"index": i, "error": msg}
		if id := req.Docs[i].ID; id != "" {
			item["id"] = id
		}
		items[i] = item
	}
	for _, i := range unroutable {
		fail(i, "no routable worker")
	}
	// Strip ?format= so sub-batches come back as one JSON document per
	// worker regardless of what the client asked the front for.
	q := r.URL.Query()
	q.Del("format")
	subURI := r.URL.Path
	if enc := q.Encode(); enc != "" {
		subURI += "?" + enc
	}
	var wg sync.WaitGroup
	for wk, idxs := range groups {
		wg.Add(1)
		go func(wk *frontWorker, idxs []int) {
			defer wg.Done()
			sub := batchRequest{Docs: make([]batchDoc, len(idxs))}
			for j, i := range idxs {
				sub.Docs[j] = req.Docs[i]
			}
			payload, _ := json.Marshal(sub)
			if !wk.acquire() {
				wk.shed.Add(1)
				f.rejected.Add(1)
				for _, i := range idxs {
					fail(i, fmt.Sprintf("worker %d at forwarding capacity, retry after 1s", wk.index))
				}
				return
			}
			defer wk.release()
			resp, err := f.roundTrip(r.Context(), wk, http.MethodPost, subURI, "application/json", payload)
			if err != nil {
				wk.errors.Add(1)
				for _, i := range idxs {
					fail(i, fmt.Sprintf("worker %d: %v", wk.index, err))
				}
				return
			}
			defer resp.Body.Close()
			wk.forwarded.Add(1)
			var envelope struct {
				Results []map[string]any `json:"results"`
				Error   string           `json:"error"`
			}
			if derr := json.NewDecoder(resp.Body).Decode(&envelope); derr != nil || resp.StatusCode != http.StatusOK {
				for _, i := range idxs {
					fail(i, fmt.Sprintf("worker %d: status %d (%s)", wk.index, resp.StatusCode, envelope.Error))
				}
				return
			}
			for _, item := range envelope.Results {
				j, ok := item["index"].(float64)
				if !ok || int(j) < 0 || int(j) >= len(idxs) {
					continue
				}
				i := idxs[int(j)]
				item["index"] = i
				items[i] = item
			}
			for _, i := range idxs {
				if items[i] == nil {
					fail(i, fmt.Sprintf("worker %d: missing result", wk.index))
				}
			}
		}(wk, idxs)
	}
	wg.Wait()
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		for _, item := range items {
			if err := enc.Encode(item); err != nil {
				return
			}
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": items})
}

// fleetWorkerJSON is one worker's /fleet //stats view.
func fleetWorkerJSON(wk *frontWorker) map[string]any {
	return map[string]any{
		"index":     wk.index,
		"url":       wk.base,
		"healthy":   wk.healthy.Load(),
		"draining":  wk.draining.Load(),
		"forwarded": wk.forwarded.Load(),
		"errors":    wk.errors.Load(),
		"shed":      wk.shed.Load(),
	}
}

func (f *Front) handleFleet(w http.ResponseWriter, _ *http.Request) {
	ws := make([]map[string]any, len(f.workers))
	for i, wk := range f.workers {
		ws[i] = fleetWorkerJSON(wk)
	}
	writeJSON(w, http.StatusOK, map[string]any{"workers": ws})
}

// handleDrain flips one worker's draining bit: a draining worker stays
// healthy (it finishes what it has) but receives no new routed work —
// its ring points spill clockwise exactly as if it were dead.
func (f *Front) handleDrain(drain bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		idx, err := strconv.Atoi(r.PathValue("index"))
		if err != nil || idx < 0 || idx >= len(f.workers) {
			writeError(w, http.StatusNotFound, "no worker %q", r.PathValue("index"))
			return
		}
		f.workers[idx].draining.Store(drain)
		writeJSON(w, http.StatusOK, fleetWorkerJSON(f.workers[idx]))
	}
}

func (f *Front) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	routable := 0
	for _, wk := range f.workers {
		if wk.routable() {
			routable++
		}
	}
	status := http.StatusOK
	state := "ok"
	if routable == 0 {
		status, state = http.StatusServiceUnavailable, "no routable workers"
	}
	writeJSON(w, status, map[string]any{
		"status":   state,
		"role":     "front",
		"workers":  len(f.workers),
		"routable": routable,
	})
}

func (f *Front) handleStats(w http.ResponseWriter, _ *http.Request) {
	ws := make([]map[string]any, len(f.workers))
	for i, wk := range f.workers {
		ws[i] = fleetWorkerJSON(wk)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"front": map[string]any{
			"uptime_seconds": time.Since(f.started).Seconds(),
			"requests":       f.requests.Load(),
			"rejected":       f.rejected.Load(),
		},
		"workers": ws,
	})
}

func (f *Front) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP mdlogd_front_requests_total Requests handled by the front tier.\n# TYPE mdlogd_front_requests_total counter\nmdlogd_front_requests_total %d\n", f.requests.Load())
	fmt.Fprintf(&b, "# HELP mdlogd_front_rejected_total Requests shed by per-worker backpressure.\n# TYPE mdlogd_front_rejected_total counter\nmdlogd_front_rejected_total %d\n", f.rejected.Load())
	fmt.Fprintf(&b, "# HELP mdlogd_front_worker_healthy Worker health by shard (1 healthy, 0 not).\n# TYPE mdlogd_front_worker_healthy gauge\n")
	for _, wk := range f.workers {
		v := 0
		if wk.healthy.Load() {
			v = 1
		}
		fmt.Fprintf(&b, "mdlogd_front_worker_healthy{worker=\"%d\"} %d\n", wk.index, v)
	}
	fmt.Fprintf(&b, "# HELP mdlogd_front_worker_forwarded_total Requests forwarded, by worker.\n# TYPE mdlogd_front_worker_forwarded_total counter\n")
	for _, wk := range f.workers {
		fmt.Fprintf(&b, "mdlogd_front_worker_forwarded_total{worker=\"%d\"} %d\n", wk.index, wk.forwarded.Load())
	}
	fmt.Fprintf(&b, "# HELP mdlogd_front_worker_shed_total Requests shed at the worker's in-flight bound, by worker.\n# TYPE mdlogd_front_worker_shed_total counter\n")
	for _, wk := range f.workers {
		fmt.Fprintf(&b, "mdlogd_front_worker_shed_total{worker=\"%d\"} %d\n", wk.index, wk.shed.Load())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}

// ParseShardOf parses a -shard-of "i/n" value (0-based index).
func ParseShardOf(s string) (idx, n int, err error) {
	parts := strings.SplitN(s, "/", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("service: shard-of %q: want \"i/n\" (e.g. \"0/4\")", s)
	}
	idx, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
	n, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err1 != nil || err2 != nil || n <= 0 || idx < 0 || idx >= n {
		return 0, 0, fmt.Errorf("service: shard-of %q: want 0 <= i < n", s)
	}
	return idx, n, nil
}
