package service

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	mdlog "mdlog"
)

// Wrapper is one registry entry: a compiled query plus the spec it
// came from. Entries are immutable after registration — replacing a
// name installs a fresh Wrapper (in-flight requests finish on the one
// they resolved), so readers never need a lock beyond the lookup.
type Wrapper struct {
	// Name is the registry key.
	Name string
	// Spec is the source description the wrapper was compiled from.
	Spec WrapperSpec
	// Query is the compiled, concurrency-safe execution artifact.
	Query *mdlog.CompiledQuery
	// Version counts installs under this name: 1 on first register,
	// +1 per replacement. With a persistent store it survives
	// restarts, so operators can tell which revision of a wrapper a
	// worker is serving.
	Version int64
	// Registered is when this entry was installed.
	Registered time.Time
}

// Registry is a named, concurrent collection of compiled wrappers —
// the daemon's unit of multi-tenancy. All methods are safe for
// concurrent use.
type Registry struct {
	mu       sync.RWMutex
	wrappers map[string]*Wrapper
	// gen increments on every mutation, so consumers holding derived
	// state (the server's fused QuerySet over all wrappers) can detect
	// staleness with one atomic load instead of re-snapshotting.
	gen atomic.Int64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{wrappers: map[string]*Wrapper{}}
}

// ValidateName rejects registry names that would not round-trip
// through an endpoint path segment.
func ValidateName(name string) error {
	if name == "" {
		return fmt.Errorf("service: wrapper name must not be empty")
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("service: wrapper name %q contains %q (want [A-Za-z0-9._-])", name, c)
		}
	}
	return nil
}

// Register compiles spec and installs it under name, replacing any
// existing entry. It reports the new entry and whether a previous one
// was replaced. Compilation happens outside the registry lock, so a
// slow compile never blocks serving.
func (r *Registry) Register(name string, spec WrapperSpec) (*Wrapper, bool, error) {
	if err := ValidateName(name); err != nil {
		return nil, false, err
	}
	q, err := spec.Compile()
	if err != nil {
		return nil, false, fmt.Errorf("service: wrapper %q: %w", name, err)
	}
	w := &Wrapper{Name: name, Spec: spec, Query: q, Version: 1, Registered: time.Now()}
	r.mu.Lock()
	old, replaced := r.wrappers[name]
	if replaced {
		w.Version = old.Version + 1
	}
	r.wrappers[name] = w
	r.gen.Add(1)
	r.mu.Unlock()
	return w, replaced, nil
}

// Install places an already-compiled entry (e.g. one restored from the
// persistent store, carrying its on-disk version) without recompiling.
func (r *Registry) Install(w *Wrapper) {
	r.mu.Lock()
	r.wrappers[w.Name] = w
	r.gen.Add(1)
	r.mu.Unlock()
}

// ReplaceAll atomically swaps the registry contents for ws — the
// zero-downtime reload path. In-flight requests finish on the entries
// they already resolved; subsequent lookups see only ws.
func (r *Registry) ReplaceAll(ws []*Wrapper) {
	m := make(map[string]*Wrapper, len(ws))
	for _, w := range ws {
		m[w.Name] = w
	}
	r.mu.Lock()
	r.wrappers = m
	r.gen.Add(1)
	r.mu.Unlock()
}

// Gen returns the registry's mutation generation: it changes whenever
// a wrapper is registered, replaced or removed.
func (r *Registry) Gen() int64 { return r.gen.Load() }

// Get resolves a name to its current wrapper.
func (r *Registry) Get(name string) (*Wrapper, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	w, ok := r.wrappers[name]
	return w, ok
}

// Remove drops name from the registry, reporting whether it existed.
// In-flight requests holding the entry finish normally.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.wrappers[name]
	if ok {
		delete(r.wrappers, name)
		r.gen.Add(1)
	}
	return ok
}

// Len reports the number of registered wrappers.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.wrappers)
}

// Snapshot returns the current entries sorted by name — a stable
// iteration order for /wrappers, /stats and /metrics.
func (r *Registry) Snapshot() []*Wrapper {
	r.mu.RLock()
	ws := make([]*Wrapper, 0, len(r.wrappers))
	for _, w := range r.wrappers {
		ws = append(ws, w)
	}
	r.mu.RUnlock()
	sort.Slice(ws, func(i, j int) bool { return ws[i].Name < ws[j].Name })
	return ws
}
