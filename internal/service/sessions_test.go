package service

import (
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
	"weak"

	mdlog "mdlog"
	"mdlog/internal/tree"
)

const listPage = `<html><body><ul><li>one</li><li>two</li></ul></body></html>`

// sessionServer boots a server with li/ul wrappers (two fusable
// members) and an open session over listPage.
func sessionServer(t *testing.T, cfg *Config) (*Server, string) {
	t.Helper()
	if cfg == nil {
		cfg = &Config{}
	}
	cfg.Wrappers = append(cfg.Wrappers,
		ConfigWrapper{Name: "items", WrapperSpec: WrapperSpec{Lang: mdlog.LangDatalog, Source: `q(X) :- label_li(X). ?- q.`}},
		ConfigWrapper{Name: "lists", WrapperSpec: WrapperSpec{Lang: mdlog.LangDatalog, Source: `q(X) :- label_ul(X). ?- q.`}},
	)
	s, ts := newTestServer(t, cfg)
	if code, _ := doJSON(t, "PUT", ts.URL+"/documents/page", listPage); code != http.StatusCreated {
		t.Fatalf("PUT session: %d", code)
	}
	return s, ts.URL
}

// extractAllSession posts /documents/{id}/extractall and returns the
// per-wrapper node ids.
func extractAllSession(t *testing.T, url, id string) map[string][]int {
	t.Helper()
	code, v := doJSON(t, "POST", url+"/documents/"+id+"/extractall", "")
	if code != http.StatusOK {
		t.Fatalf("extractall: %d (%v)", code, v)
	}
	out := map[string][]int{}
	for _, item := range v["results"].([]any) {
		m := item.(map[string]any)
		if e, ok := m["error"]; ok {
			t.Fatalf("wrapper %v failed: %v", m["wrapper"], e)
		}
		out[m["wrapper"].(string)] = intSlice(t, m["nodes"])
	}
	return out
}

// TestSessionLifecycle is the session acceptance path: upload, extract,
// edit, re-extract (incrementally maintained), inspect, close.
func TestSessionLifecycle(t *testing.T) {
	_, url := sessionServer(t, nil)

	res := extractAllSession(t, url, "page")
	if len(res["items"]) != 2 || len(res["lists"]) != 1 {
		t.Fatalf("initial extract: %v", res)
	}
	ul := res["lists"][0]

	// Insert a third list item; only the delta should be re-derived.
	code, v := doJSON(t, "PATCH", url+"/documents/page",
		fmt.Sprintf(`{"ops":[{"op":"insert","parent":%d,"pos":9,"term":"li(b)"}]}`, ul))
	if code != http.StatusOK {
		t.Fatalf("PATCH: %d (%v)", code, v)
	}
	inserted := intSlice(t, v["inserted"])
	if len(inserted) != 1 {
		t.Fatalf("inserted = %v", inserted)
	}
	res = extractAllSession(t, url, "page")
	if len(res["items"]) != 3 {
		t.Fatalf("after insert: %v", res)
	}
	found := false
	for _, id := range res["items"] {
		if id == inserted[0] {
			found = true
		}
	}
	if !found {
		t.Fatalf("inserted node %d missing from %v", inserted[0], res["items"])
	}

	// Remove it again; results return to the original extension.
	code, v = doJSON(t, "PATCH", url+"/documents/page",
		fmt.Sprintf(`{"ops":[{"op":"remove","node":%d},{"op":"settext","node":%d,"text":"ONE"}]}`, inserted[0], res["items"][0]))
	if code != http.StatusOK {
		t.Fatalf("PATCH remove: %d (%v)", code, v)
	}
	if res = extractAllSession(t, url, "page"); len(res["items"]) != 2 {
		t.Fatalf("after removal: %v", res)
	}

	// Session introspection reports the maintenance counters.
	code, v = doJSON(t, "GET", url+"/documents/page", "")
	if code != http.StatusOK {
		t.Fatalf("GET session: %d", code)
	}
	if v["edits"].(float64) != 3 {
		t.Fatalf("edits = %v, want 3", v["edits"])
	}
	inc := v["incremental"].(map[string]any)
	if inc["applies"].(float64) == 0 {
		t.Fatalf("no incremental applies recorded: %v", v)
	}

	// A failing op reports how much of the script applied.
	code, v = doJSON(t, "PATCH", url+"/documents/page", `{"ops":[{"op":"remove","node":0}]}`)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("removing the root: %d (%v)", code, v)
	}

	// Close; the session is gone.
	if code, _ = doJSON(t, "DELETE", url+"/documents/page", ""); code != http.StatusNoContent {
		t.Fatalf("DELETE: %d", code)
	}
	if code, _ = doJSON(t, "GET", url+"/documents/page", ""); code != http.StatusNotFound {
		t.Fatalf("GET after DELETE: %d", code)
	}
	if code, _ = doJSON(t, "POST", url+"/documents/page/extractall", ""); code != http.StatusNotFound {
		t.Fatalf("extractall after DELETE: %d", code)
	}
}

// TestSessionCapacity: at MaxSessions with no idle session to reclaim,
// a new id is shed with 503 + Retry-After; replacing an existing id
// and reopening after DELETE both still work.
func TestSessionCapacity(t *testing.T) {
	_, url := sessionServer(t, &Config{MaxSessions: 2})
	if code, _ := doJSON(t, "PUT", url+"/documents/second", listPage); code != http.StatusCreated {
		t.Fatalf("second PUT: %d", code)
	}
	req, err := http.NewRequest("PUT", url+"/documents/third", strings.NewReader(listPage))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("PUT at capacity: %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	// Replacing an existing id is not an admission.
	if code, _ := doJSON(t, "PUT", url+"/documents/second", listPage); code != http.StatusOK {
		t.Fatalf("replacement PUT: %d", code)
	}
	// Freeing a slot admits the new id.
	if code, _ := doJSON(t, "DELETE", url+"/documents/second", ""); code != http.StatusNoContent {
		t.Fatal("DELETE failed")
	}
	if code, _ := doJSON(t, "PUT", url+"/documents/third", listPage); code != http.StatusCreated {
		t.Fatalf("PUT after DELETE: %d", code)
	}
}

// TestSessionLRUReclaim: at capacity, a sufficiently idle
// least-recently-used session is reclaimed instead of shedding.
func TestSessionLRUReclaim(t *testing.T) {
	_, url := sessionServer(t, &Config{MaxSessions: 1, SessionIdleMS: 1})
	time.Sleep(10 * time.Millisecond)
	if code, _ := doJSON(t, "PUT", url+"/documents/next", listPage); code != http.StatusCreated {
		t.Fatalf("PUT with reclaimable LRU: %d", code)
	}
	if code, _ := doJSON(t, "GET", url+"/documents/page", ""); code != http.StatusNotFound {
		t.Fatalf("reclaimed session still present: %d", code)
	}
}

// TestSessionConcurrentPatchExtract hammers one session with
// concurrent editors and extractors — the -race net for the session
// path (edits and incremental runs serialize on the document).
func TestSessionConcurrentPatchExtract(t *testing.T) {
	_, url := sessionServer(t, nil)
	ul := extractAllSession(t, url, "page")["lists"][0]
	var wg sync.WaitGroup
	errs := make(chan string, 256)
	for w := 0; w < 2; w++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				code, v := doJSON(t, "PATCH", url+"/documents/page",
					fmt.Sprintf(`{"ops":[{"op":"insert","parent":%d,"pos":0,"term":"li"}]}`, ul))
				if code != http.StatusOK {
					errs <- fmt.Sprintf("PATCH: %d (%v)", code, v)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				code, v := doJSON(t, "POST", url+"/documents/page/extractall", "")
				if code != http.StatusOK {
					errs <- fmt.Sprintf("extractall: %d (%v)", code, v)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	// 2 editors x 25 inserted items + the original two.
	if res := extractAllSession(t, url, "page"); len(res["items"]) != 52 {
		t.Fatalf("final items = %d, want 52", len(res["items"]))
	}
}

// TestSessionDeleteFreesArena: closing a session must leave nothing in
// the daemon pinning the document's arena — the weak-pointer contract
// of the pooled evaluation state.
func TestSessionDeleteFreesArena(t *testing.T) {
	s, url := sessionServer(t, nil)
	extractAllSession(t, url, "page") // materialize incremental state
	wp := func() weak.Pointer[tree.Arena] {
		ss, ok := s.sessions.get("page")
		if !ok {
			t.Fatal("session missing")
		}
		return weak.Make(ss.doc.Tree().Arena())
	}()
	if code, _ := doJSON(t, "DELETE", url+"/documents/page", ""); code != http.StatusNoContent {
		t.Fatal("DELETE failed")
	}
	for i := 0; i < 100 && wp.Value() != nil; i++ {
		runtime.GC()
		time.Sleep(time.Millisecond)
	}
	if wp.Value() != nil {
		t.Fatal("closed session's arena is still reachable")
	}
}
