package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	mdlog "mdlog"
)

const elogSrc = `
item(x)  :- root(x0), subelem("html.body.table.tr", x0, x).
`

const page = `<html><body><table>
<tr><td>Espresso</td><td><b>2.20</b></td></tr>
<tr><td>Water</td><td>1.00</td></tr>
</table></body></html>`

func newTestServer(t *testing.T, cfg *Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func doJSON(t *testing.T, method, url string, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode, v
}

func intSlice(t *testing.T, v any) []int {
	t.Helper()
	raw, ok := v.([]any)
	if !ok {
		t.Fatalf("want JSON array of node ids, got %T (%v)", v, v)
	}
	ids := make([]int, len(raw))
	for i, x := range raw {
		ids[i] = int(x.(float64))
	}
	return ids
}

// TestEndToEndElogWrapper is the acceptance path: register an Elog⁻
// wrapper over HTTP, POST an HTML document, and get the same node ids
// CompiledQuery.Select computes directly; /stats reflects the run.
func TestEndToEndElogWrapper(t *testing.T) {
	_, ts := newTestServer(t, nil)

	spec, _ := json.Marshal(map[string]any{"lang": "elog", "source": elogSrc})
	status, info := doJSON(t, http.MethodPut, ts.URL+"/wrappers/items", string(spec))
	if status != http.StatusCreated {
		t.Fatalf("PUT: status %d, body %v", status, info)
	}
	if info["lang"] != "elog" || info["pred"] != "item" {
		t.Fatalf("PUT response %v", info)
	}

	status, body := doJSON(t, http.MethodPost, ts.URL+"/extract/items", page)
	if status != http.StatusOK {
		t.Fatalf("extract: status %d, body %v", status, body)
	}
	got := intSlice(t, body["nodes"])

	q, err := mdlog.Compile(elogSrc, mdlog.LangElog)
	if err != nil {
		t.Fatal(err)
	}
	want, err := q.Select(context.Background(), mdlog.ParseHTML(page))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("service extraction %v != direct Select %v", got, want)
	}
	if len(want) != 2 {
		t.Fatalf("fixture drifted: want 2 rows, got %v", want)
	}

	// Repeat run: served from the result memo, reflected in stats.
	status, _ = doJSON(t, http.MethodPost, ts.URL+"/extract/items", page)
	if status != http.StatusOK {
		t.Fatalf("second extract: status %d", status)
	}
	status, stats := doJSON(t, http.MethodGet, ts.URL+"/stats", "")
	if status != http.StatusOK {
		t.Fatalf("stats: status %d", status)
	}
	wrapperStats := stats["wrappers"].(map[string]any)["items"].(map[string]any)
	queryStats := wrapperStats["query"].(map[string]any)
	if runs := queryStats["runs"].(float64); runs != 2 {
		t.Errorf("stats runs = %v, want 2", runs)
	}
	svc := stats["service"].(map[string]any)
	if docs := svc["documents"].(float64); docs != 2 {
		t.Errorf("service documents = %v, want 2", docs)
	}

	// assign and xml outputs on the same wrapper.
	status, body = doJSON(t, http.MethodPost, ts.URL+"/extract/items?output=assign", page)
	if status != http.StatusOK {
		t.Fatalf("assign: status %d, body %v", status, body)
	}
	assign := body["assign"].(map[string]any)
	if len(intSlice(t, assign["item"])) != 2 {
		t.Errorf("assign %v, want 2 item nodes", assign)
	}
	resp, err := http.Post(ts.URL+"/extract/items?output=xml", "text/html", strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	xml := make([]byte, 1<<16)
	n, _ := resp.Body.Read(xml)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/xml" {
		t.Errorf("xml content type %q", ct)
	}
	if !strings.Contains(string(xml[:n]), "<item") {
		t.Errorf("xml output %q lacks <item", xml[:n])
	}

	// Registry CRUD round-trip.
	status, one := doJSON(t, http.MethodGet, ts.URL+"/wrappers/items", "")
	if status != http.StatusOK || one["source"] != elogSrc {
		t.Errorf("GET wrapper: status %d, body %v", status, one)
	}
	status, list := doJSON(t, http.MethodGet, ts.URL+"/wrappers", "")
	if status != http.StatusOK || len(list["wrappers"].([]any)) != 1 {
		t.Errorf("list: status %d, body %v", status, list)
	}
	status, _ = doJSON(t, http.MethodDelete, ts.URL+"/wrappers/items", "")
	if status != http.StatusNoContent {
		t.Errorf("DELETE: status %d", status)
	}
	status, _ = doJSON(t, http.MethodPost, ts.URL+"/extract/items", page)
	if status != http.StatusNotFound {
		t.Errorf("extract after delete: status %d, want 404", status)
	}
}

func batchBody(t *testing.T, n int) string {
	t.Helper()
	docs := make([]map[string]any, n)
	for i := range docs {
		docs[i] = map[string]any{"id": fmt.Sprintf("p%d", i), "html": page}
	}
	b, err := json.Marshal(map[string]any{"docs": docs})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func bootConfig() *Config {
	return &Config{Wrappers: []ConfigWrapper{{
		Name:        "items",
		WrapperSpec: WrapperSpec{Lang: mdlog.LangElog, Source: elogSrc, KeepText: true},
	}}}
}

// TestBatchJSON: a multi-document request fans across the worker pool
// and returns per-document results in input order.
func TestBatchJSON(t *testing.T) {
	_, ts := newTestServer(t, bootConfig())
	status, body := doJSON(t, http.MethodPost, ts.URL+"/batch/items", batchBody(t, 8))
	if status != http.StatusOK {
		t.Fatalf("batch: status %d, body %v", status, body)
	}
	results := body["results"].([]any)
	if len(results) != 8 {
		t.Fatalf("got %d results, want 8", len(results))
	}
	for i, raw := range results {
		item := raw.(map[string]any)
		if int(item["index"].(float64)) != i {
			t.Errorf("result %d out of order: %v", i, item)
		}
		if item["id"] != fmt.Sprintf("p%d", i) {
			t.Errorf("result %d id %v", i, item["id"])
		}
		if errMsg, ok := item["error"]; ok {
			t.Errorf("result %d failed: %v", i, errMsg)
		}
		if len(intSlice(t, item["nodes"])) != 2 {
			t.Errorf("result %d nodes %v, want 2", i, item["nodes"])
		}
	}
}

// TestBatchNDJSON: the streaming response format emits one JSON line
// per document, in input order.
func TestBatchNDJSON(t *testing.T) {
	_, ts := newTestServer(t, bootConfig())
	resp, err := http.Post(ts.URL+"/batch/items?format=ndjson&output=assign", "application/json", strings.NewReader(batchBody(t, 5)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var lines int
	for sc.Scan() {
		var item map[string]any
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if int(item["index"].(float64)) != lines {
			t.Errorf("line %d has index %v", lines, item["index"])
		}
		if _, ok := item["assign"]; !ok {
			t.Errorf("line %d lacks assign: %v", lines, item)
		}
		lines++
	}
	if lines != 5 {
		t.Errorf("got %d NDJSON lines, want 5", lines)
	}
}

// TestBatchPerDocumentErrors: a wrapper whose Select cannot run (two
// patterns, no distinguished predicate) fails every document
// individually — the batch still returns one result per document
// instead of aborting.
func TestBatchPerDocumentErrors(t *testing.T) {
	cfg := &Config{Wrappers: []ConfigWrapper{{
		Name: "multi",
		WrapperSpec: WrapperSpec{Lang: mdlog.LangElog, Source: `
item(x)  :- root(x0), subelem("html.body.table.tr", x0, x).
price(x) :- item(x0), subelem("td.b", x0, x).
`},
	}}}
	_, ts := newTestServer(t, cfg)
	status, body := doJSON(t, http.MethodPost, ts.URL+"/batch/multi", batchBody(t, 3))
	if status != http.StatusOK {
		t.Fatalf("batch: status %d, body %v", status, body)
	}
	results := body["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("got %d results, want one per document", len(results))
	}
	for i, raw := range results {
		item := raw.(map[string]any)
		if _, ok := item["error"]; !ok {
			t.Errorf("result %d: want a per-document error, got %v", i, item)
		}
	}
	// The same wrapper still wraps fine (no Select involved).
	status, body = doJSON(t, http.MethodPost, ts.URL+"/batch/multi?output=assign", batchBody(t, 2))
	if status != http.StatusOK {
		t.Fatalf("assign batch: status %d", status)
	}
	for i, raw := range body["results"].([]any) {
		item := raw.(map[string]any)
		if _, ok := item["error"]; ok {
			t.Errorf("assign result %d failed: %v", i, item)
		}
	}
}

// TestConcurrentTraffic hammers extract, batch, stats and re-register
// concurrently — the race-clean acceptance criterion.
func TestConcurrentTraffic(t *testing.T) {
	_, ts := newTestServer(t, bootConfig())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if status, body := doJSON(t, http.MethodPost, ts.URL+"/extract/items", page); status != http.StatusOK {
					t.Errorf("extract: status %d body %v", status, body)
				}
				if status, _ := doJSON(t, http.MethodPost, ts.URL+"/batch/items", batchBody(t, 4)); status != http.StatusOK {
					t.Errorf("batch: status %d", status)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		spec, _ := json.Marshal(map[string]any{"lang": "elog", "source": elogSrc})
		for i := 0; i < 10; i++ {
			if status, _ := doJSON(t, http.MethodPut, ts.URL+"/wrappers/items", string(spec)); status != http.StatusOK && status != http.StatusCreated {
				t.Errorf("re-register: status %d", status)
			}
			doJSON(t, http.MethodGet, ts.URL+"/stats", "")
			if resp, err := http.Get(ts.URL + "/metrics"); err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()
}

// TestAdmissionBound: with MaxInFlight=1, a second concurrent
// extraction is shed with 503 + Retry-After instead of queuing.
func TestAdmissionBound(t *testing.T) {
	s, err := New(&Config{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	slow := s.admitted(epExtract, func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	})
	first := httptest.NewRecorder()
	go slow(first, httptest.NewRequest(http.MethodPost, "/extract/x", nil))
	<-entered

	second := httptest.NewRecorder()
	slow(second, httptest.NewRequest(http.MethodPost, "/extract/x", nil))
	if second.Code != http.StatusServiceUnavailable {
		t.Fatalf("second request: status %d, want 503", second.Code)
	}
	if second.Header().Get("Retry-After") == "" {
		t.Error("503 lacks Retry-After")
	}
	if got := s.rejected.Load(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
	close(release)
}

// TestBatchCancellation: canceling the request context mid-batch
// yields per-document cancellation errors, not a hung response.
func TestBatchCancellation(t *testing.T) {
	s, err := New(bootConfig())
	if err != nil {
		t.Fatal(err)
	}
	wr, _ := s.reg.Get("items")
	ctx, cancel := context.WithCancel(context.Background())
	docs := make([]batchDoc, 64)
	for i := range docs {
		docs[i] = batchDoc{HTML: page}
	}
	results := s.runBatch(ctx, wr, outNodes, docs)
	if first, ok := <-results; !ok || first["error"] != nil {
		t.Fatalf("first doc: %v ok=%v", first, ok)
	}
	cancel()
	count := 1
	for item := range results { // must drain and close promptly
		count++
		_ = item
	}
	if count > len(docs) {
		t.Fatalf("yielded %d results for %d docs", count, len(docs))
	}
}

// TestMetricsText: the Prometheus rendering carries the per-wrapper
// series and service counters.
func TestMetricsText(t *testing.T) {
	_, ts := newTestServer(t, bootConfig())
	if status, _ := doJSON(t, http.MethodPost, ts.URL+"/extract/items", page); status != http.StatusOK {
		t.Fatalf("extract: status %d", status)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`mdlogd_wrapper_runs_total{wrapper="items"} 1`,
		`mdlogd_documents_total 1`,
		`mdlogd_wrappers 1`,
		`# TYPE mdlogd_requests_total counter`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output lacks %q", want)
		}
	}
}

// TestConfigLoad: file references resolve relative to the config,
// unknown fields are rejected, and New boots the wrappers.
func TestConfigLoad(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "items.elog"), []byte(elogSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "mdlogd.json")
	cfgJSON := `{
  "addr": "127.0.0.1:0",
  "workers": 2,
  "max_in_flight": 8,
  "wrappers": [
    {"name": "items", "lang": "elog", "file": "items.elog"},
    {"name": "tds", "lang": "xpath", "source": "//td[b]"}
  ]
}`
	if err := os.WriteFile(cfgPath, []byte(cfgJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Wrappers[0].Source != elogSrc {
		t.Errorf("file reference not inlined: %+v", cfg.Wrappers[0])
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.reg.Len() != 2 {
		t.Errorf("booted %d wrappers, want 2", s.reg.Len())
	}

	if _, err := ParseConfig([]byte(`{"adr": ":1"}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseConfig([]byte(`{"wrappers":[{"name":"x","lang":"nope","source":"y"}]}`)); err == nil {
		t.Error("unknown language accepted")
	}
	noLang, err := ParseConfig([]byte(`{"wrappers":[{"name":"x","source":"//td"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(noLang); err == nil {
		t.Error("boot accepted a wrapper without a language (zero value must not mean datalog)")
	}
	bad := &Config{Wrappers: []ConfigWrapper{{Name: "bad", WrapperSpec: WrapperSpec{Lang: mdlog.LangXPath, Source: "//td["}}}}
	if _, err := New(bad); err == nil {
		t.Error("boot accepted an uncompilable wrapper")
	}
}

// TestPutWrapperRejections: bad specs and names are 400s.
func TestPutWrapperRejections(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, tc := range []struct{ name, url, body string }{
		{"bad json", ts.URL + "/wrappers/x", `{`},
		{"missing lang", ts.URL + "/wrappers/x", `{"source":"//td[b]"}`},
		{"unknown field", ts.URL + "/wrappers/x", `{"lang":"xpath","source":"//td","bogus":1}`},
		{"bad language", ts.URL + "/wrappers/x", `{"lang":"nope","source":"//td"}`},
		{"compile error", ts.URL + "/wrappers/x", `{"lang":"xpath","source":"//td["}`},
		{"bad name", ts.URL + "/wrappers/a%20b", `{"lang":"xpath","source":"//td"}`},
	} {
		if status, _ := doJSON(t, http.MethodPut, tc.url, tc.body); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, status)
		}
	}
	if status, _ := doJSON(t, http.MethodPost, ts.URL+"/extract/none", page); status != http.StatusNotFound {
		t.Error("extract on unknown wrapper should 404")
	}
	if status, _ := doJSON(t, http.MethodPost, ts.URL+"/batch/none", batchBody(t, 1)); status != http.StatusNotFound {
		t.Error("batch on unknown wrapper should 404")
	}
}

// TestBodyCaps: max_body_bytes maps to 413 on every body-carrying
// endpoint, and a negative cap means unbounded (not zero).
func TestBodyCaps(t *testing.T) {
	small := bootConfig()
	small.MaxBodyBytes = 64
	_, ts := newTestServer(t, small)
	big := strings.Repeat("x", 200)
	if status, _ := doJSON(t, http.MethodPost, ts.URL+"/extract/items", big); status != http.StatusRequestEntityTooLarge {
		t.Errorf("extract over cap: status %d, want 413", status)
	}
	if status, _ := doJSON(t, http.MethodPost, ts.URL+"/batch/items", batchBody(t, 2)); status != http.StatusRequestEntityTooLarge {
		t.Errorf("batch over cap: status %d, want 413", status)
	}
	spec := fmt.Sprintf(`{"lang":"xpath","source":"//td[b]%s"}`, strings.Repeat(" ", 200))
	if status, _ := doJSON(t, http.MethodPut, ts.URL+"/wrappers/w", spec); status != http.StatusRequestEntityTooLarge {
		t.Errorf("put over cap: status %d, want 413", status)
	}

	unbounded := bootConfig()
	unbounded.MaxBodyBytes = -1
	_, ts2 := newTestServer(t, unbounded)
	if status, body := doJSON(t, http.MethodPost, ts2.URL+"/extract/items", page); status != http.StatusOK {
		t.Errorf("unbounded extract: status %d body %v, want 200", status, body)
	}
}

// TestServeGracefulShutdown: Serve drains and returns nil once its
// context is canceled.
func TestServeGracefulShutdown(t *testing.T) {
	s, err := New(bootConfig())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if status, _ := doJSON(t, http.MethodPost, url+"/extract/items", page); status == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never came up")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil on graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not shut down")
	}
}

// TestOptimizerObservability: /stats and /metrics report per-wrapper
// rules-before/rules-after from the compile-time optimizer, and the
// Elog boot wrapper actually shrinks.
func TestOptimizerObservability(t *testing.T) {
	s, ts := newTestServer(t, bootConfig())

	wr, ok := s.Registry().Get("items")
	if !ok {
		t.Fatal("items wrapper missing")
	}
	rep := wr.Query.OptStats()
	if rep.RulesBefore <= rep.RulesAfter {
		t.Fatalf("optimizer did not shrink the Elog wrapper: %d -> %d", rep.RulesBefore, rep.RulesAfter)
	}

	status, body := doJSON(t, http.MethodGet, ts.URL+"/stats", "")
	if status != http.StatusOK {
		t.Fatalf("/stats: %d", status)
	}
	opt, ok := body["wrappers"].(map[string]any)["items"].(map[string]any)["optimizer"].(map[string]any)
	if !ok {
		t.Fatalf("/stats lacks the optimizer block: %v", body)
	}
	if int(opt["rules_before"].(float64)) != rep.RulesBefore ||
		int(opt["rules_after"].(float64)) != rep.RulesAfter {
		t.Errorf("/stats optimizer block %v, want %d -> %d", opt, rep.RulesBefore, rep.RulesAfter)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		fmt.Sprintf(`mdlogd_wrapper_rules_before{wrapper="items"} %d`, rep.RulesBefore),
		fmt.Sprintf(`mdlogd_wrapper_rules_after{wrapper="items"} %d`, rep.RulesAfter),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output lacks %q", want)
		}
	}
}

// TestWrapperSpecEngineOpt: specs select engines and optimization
// levels, invalid values fail compilation, and the daemon-wide default
// applies to specs that leave opt empty.
func TestWrapperSpecEngineOpt(t *testing.T) {
	ws := WrapperSpec{Lang: mdlog.LangElog, Source: elogSrc, Engine: "seminaive"}
	if _, err := ws.Compile(); err != nil {
		t.Fatalf("seminaive spec: %v", err)
	}
	ws.Engine = "bitmap"
	if _, err := ws.Compile(); err != nil {
		t.Fatalf("bitmap spec: %v", err)
	}
	ws.Engine = "warp"
	if _, err := ws.Compile(); err == nil || !strings.Contains(err.Error(), "valid engines: linear, bitmap") {
		t.Errorf("bad engine must name the valid options, got %v", err)
	}
	ws.Engine = ""
	ws.Opt = "nope"
	if _, err := ws.Compile(); err == nil {
		t.Error("bad opt level must fail compilation")
	}

	cfg := bootConfig()
	cfg.Opt = "O0"
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wr, _ := s.Registry().Get("items")
	if lvl := wr.Query.OptStats().Level; lvl != mdlog.OptNone {
		t.Errorf("daemon default O0 not applied: wrapper compiled at %v", lvl)
	}
	bad := bootConfig()
	bad.Opt = "zz"
	if _, err := New(bad); err == nil {
		t.Error("invalid daemon opt default must fail boot")
	}

	// The daemon-wide engine default applies to specs that leave engine
	// empty, and an unknown default fails the boot.
	cfg = bootConfig()
	cfg.Engine = "bitmap"
	s, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wr, _ = s.Registry().Get("items")
	if got := wr.Query.EngineName(); got != "bitmap" {
		t.Errorf("daemon default engine not applied: wrapper runs on %q", got)
	}
	bad = bootConfig()
	bad.Engine = "warp"
	if _, err := New(bad); err == nil {
		t.Error("invalid daemon engine default must fail boot")
	}
}

// multiBootConfig registers a mixed fleet: two fusable wrappers (Elog⁻
// and XPath) and one unfusable (MSO automaton).
func multiBootConfig() *Config {
	return &Config{Wrappers: []ConfigWrapper{
		{Name: "items", WrapperSpec: WrapperSpec{Lang: mdlog.LangElog, Source: elogSrc}},
		{Name: "prices", WrapperSpec: WrapperSpec{Lang: mdlog.LangXPath, Source: `//td[b]`}},
		{Name: "bolded", WrapperSpec: WrapperSpec{Lang: mdlog.LangMSO,
			Source: `label_td(x) & exists y (child(x,y) & label_b(y))`}},
	}}
}

// TestExtractAll: one POSTed document, every registered wrapper, each
// result identical to the wrapper's own /extract.
func TestExtractAll(t *testing.T) {
	_, ts := newTestServer(t, multiBootConfig())
	status, body := doJSON(t, http.MethodPost, ts.URL+"/extractall", page)
	if status != http.StatusOK {
		t.Fatalf("extractall: status %d, body %v", status, body)
	}
	if int(body["wrappers"].(float64)) != 3 {
		t.Fatalf("wrappers = %v", body["wrappers"])
	}
	if int(body["fused"].(float64)) != 2 {
		t.Fatalf("fused = %v (want the elog + xpath members)", body["fused"])
	}
	results := body["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("results: %v", results)
	}
	for _, raw := range results {
		item := raw.(map[string]any)
		name := item["wrapper"].(string)
		if errmsg, ok := item["error"]; ok {
			t.Fatalf("%s failed: %v", name, errmsg)
		}
		status, single := doJSON(t, http.MethodPost, ts.URL+"/extract/"+name, page)
		if status != http.StatusOK {
			t.Fatalf("extract/%s: status %d", name, status)
		}
		if fmt.Sprint(intSlice(t, item["nodes"])) != fmt.Sprint(intSlice(t, single["nodes"])) {
			t.Fatalf("%s: fused %v, individual %v", name, item["nodes"], single["nodes"])
		}
	}

	// The fused members recorded FusedRuns; /stats and /metrics carry
	// the counter per wrapper.
	status, stats := doJSON(t, http.MethodGet, ts.URL+"/stats", "")
	if status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	wrappers := stats["wrappers"].(map[string]any)
	fr := func(name string) int {
		return int(wrappers[name].(map[string]any)["query"].(map[string]any)["fused_runs"].(float64))
	}
	if fr("items") != 1 || fr("prices") != 1 {
		t.Fatalf("fused_runs: items=%d prices=%d", fr("items"), fr("prices"))
	}
	if fr("bolded") != 0 {
		t.Fatalf("unfused wrapper counted a fused run: %d", fr("bolded"))
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(text), `mdlogd_wrapper_fused_runs_total{wrapper="items"} 1`) {
		t.Fatalf("metrics missing fused_runs counter:\n%s", text)
	}
}

// TestExtractAllOutputAssign: ?output=assign returns each wrapper's
// pattern → nodes map; ?output=xml is rejected.
func TestExtractAllOutputAssign(t *testing.T) {
	_, ts := newTestServer(t, multiBootConfig())
	status, body := doJSON(t, http.MethodPost, ts.URL+"/extractall?output=assign", page)
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, body)
	}
	for _, raw := range body["results"].([]any) {
		item := raw.(map[string]any)
		if _, ok := item["assign"]; !ok {
			t.Fatalf("missing assign: %v", item)
		}
	}
	status, body = doJSON(t, http.MethodPost, ts.URL+"/extractall?output=xml", page)
	if status != http.StatusBadRequest {
		t.Fatalf("xml output accepted: %d %v", status, body)
	}
}

// TestExtractAllEmptyRegistry: no wrappers means an empty result, not
// an error.
func TestExtractAllEmptyRegistry(t *testing.T) {
	_, ts := newTestServer(t, nil)
	status, body := doJSON(t, http.MethodPost, ts.URL+"/extractall", page)
	if status != http.StatusOK || int(body["wrappers"].(float64)) != 0 {
		t.Fatalf("status %d, body %v", status, body)
	}
}

// TestExtractAllRegistryChange: registering a new wrapper after a
// fused pass invalidates the cached set.
func TestExtractAllRegistryChange(t *testing.T) {
	_, ts := newTestServer(t, multiBootConfig())
	if status, _ := doJSON(t, http.MethodPost, ts.URL+"/extractall", page); status != http.StatusOK {
		t.Fatalf("first extractall: %d", status)
	}
	spec, _ := json.Marshal(map[string]any{"lang": "xpath", "source": `//em`})
	if status, _ := doJSON(t, http.MethodPut, ts.URL+"/wrappers/ems", string(spec)); status != http.StatusCreated {
		t.Fatalf("PUT failed")
	}
	status, body := doJSON(t, http.MethodPost, ts.URL+"/extractall", page)
	if status != http.StatusOK || int(body["wrappers"].(float64)) != 4 {
		t.Fatalf("set not rebuilt: %d %v", status, body)
	}
	if status, _ := doJSON(t, http.MethodDelete, ts.URL+"/wrappers/ems", ""); status != http.StatusNoContent {
		t.Fatalf("DELETE failed")
	}
	status, body = doJSON(t, http.MethodPost, ts.URL+"/extractall", page)
	if status != http.StatusOK || int(body["wrappers"].(float64)) != 3 {
		t.Fatalf("set not rebuilt after delete: %d %v", status, body)
	}
}

// TestBatchAll: the batch envelope against every wrapper — per
// document, per wrapper, in input order, with ids echoed.
func TestBatchAll(t *testing.T) {
	_, ts := newTestServer(t, multiBootConfig())
	status, body := doJSON(t, http.MethodPost, ts.URL+"/batchall", batchBody(t, 4))
	if status != http.StatusOK {
		t.Fatalf("batchall: status %d, body %v", status, body)
	}
	results := body["results"].([]any)
	if len(results) != 4 {
		t.Fatalf("results: %v", results)
	}
	for i, raw := range results {
		item := raw.(map[string]any)
		if int(item["index"].(float64)) != i || item["id"] != fmt.Sprintf("p%d", i) {
			t.Fatalf("doc %d out of order: %v", i, item)
		}
		inner := item["results"].([]any)
		if len(inner) != 3 {
			t.Fatalf("doc %d wrapper results: %v", i, inner)
		}
	}
}

// TestBatchAllPerDocumentErrors: an unparseable document (here: over
// the body cap via a huge doc is covered elsewhere; an empty batch)
// still yields well-formed output, and NDJSON streams items.
func TestBatchAllNDJSON(t *testing.T) {
	_, ts := newTestServer(t, multiBootConfig())
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/batchall?format=ndjson", strings.NewReader(batchBody(t, 3)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	n := 0
	for sc.Scan() {
		var item map[string]any
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if int(item["index"].(float64)) != n {
			t.Fatalf("line %d: %v", n, item)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("got %d lines", n)
	}
}

// TestSubsumptionEndToEnd: register a datalog wrapper plus a
// semantically equal but syntactically different variant; the fused
// all-wrapper pass must serve the variant by projection (zero rules of
// its own), /extractall must return identical results for both, and
// /wrappers, /stats and /metrics must surface the subsumption.
func TestSubsumptionEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, nil)

	put := func(name, source string) {
		t.Helper()
		spec, _ := json.Marshal(map[string]any{"lang": "datalog", "source": source})
		if status, body := doJSON(t, http.MethodPut, ts.URL+"/wrappers/"+name, string(spec)); status != http.StatusCreated {
			t.Fatalf("PUT %s: status %d, body %v", name, status, body)
		}
	}
	put("base", `q(X) :- firstchild(X,Y), label_td(Y). ?- q.`)
	// Duplicated fragment + defensive dom(X): only the containment
	// checker proves this equal to base.
	put("variant", `q(X) :- dom(X), firstchild(X,Z), label_td(Z), firstchild(X,W), label_td(W). ?- q.`)

	// /wrappers surfaces the compile decision.
	status, list := doJSON(t, http.MethodGet, ts.URL+"/wrappers", "")
	if status != http.StatusOK {
		t.Fatalf("GET /wrappers: %d", status)
	}
	modes := map[string]string{}
	shared := map[string]string{}
	for _, raw := range list["wrappers"].([]any) {
		info := raw.(map[string]any)
		sub, ok := info["subsume"].(map[string]any)
		if !ok {
			t.Fatalf("wrapper %v lacks subsume info: %v", info["name"], info)
		}
		modes[info["name"].(string)] = sub["mode"].(string)
		if sw, ok := sub["shared_with"].(string); ok {
			shared[info["name"].(string)] = sw
		}
	}
	if modes["base"] != "evaluated" || modes["variant"] != "subsumed" {
		t.Fatalf("modes: %v", modes)
	}
	if shared["variant"] != "base" {
		t.Fatalf("shared_with: %v", shared)
	}

	// /extractall: both wrappers answer, identically, in one pass.
	status, body := doJSON(t, http.MethodPost, ts.URL+"/extractall", page)
	if status != http.StatusOK {
		t.Fatalf("extractall: status %d, body %v", status, body)
	}
	byName := map[string][]int{}
	for _, raw := range body["results"].([]any) {
		res := raw.(map[string]any)
		byName[res["wrapper"].(string)] = intSlice(t, res["nodes"])
	}
	if len(byName["base"]) == 0 {
		t.Fatalf("fixture drifted: base selects nothing: %v", body)
	}
	if fmt.Sprint(byName["base"]) != fmt.Sprint(byName["variant"]) {
		t.Fatalf("equivalent wrappers disagree: %v vs %v", byName["base"], byName["variant"])
	}
	// Cross-check against a direct individual evaluation of the variant.
	q, err := mdlog.Compile(`q(X) :- dom(X), firstchild(X,Z), label_td(Z), firstchild(X,W), label_td(W). ?- q.`, mdlog.LangDatalog)
	if err != nil {
		t.Fatal(err)
	}
	want, err := q.Select(context.Background(), mdlog.ParseHTML(page))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(byName["variant"]) != fmt.Sprint(want) {
		t.Fatalf("projection answer %v != direct evaluation %v", byName["variant"], want)
	}

	// /stats: the variant's runs are flagged subsumed; the fusion block
	// records the checker's work.
	status, stats := doJSON(t, http.MethodGet, ts.URL+"/stats", "")
	if status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	wrappers := stats["wrappers"].(map[string]any)
	variant := wrappers["variant"].(map[string]any)
	if sr := variant["query"].(map[string]any)["subsumed_runs"].(float64); sr < 1 {
		t.Fatalf("variant subsumed_runs = %v, want >= 1", sr)
	}
	if sr := wrappers["base"].(map[string]any)["query"].(map[string]any)["subsumed_runs"].(float64); sr != 0 {
		t.Fatalf("base subsumed_runs = %v, want 0", sr)
	}
	fusion, ok := stats["fusion"].(map[string]any)
	if !ok {
		t.Fatalf("stats lacks fusion block: %v", stats)
	}
	if fusion["subsumed_preds"].(float64) < 1 || fusion["subsume_checked"].(float64) < 1 {
		t.Fatalf("fusion block: %v", fusion)
	}

	// /metrics: the counters exist with the right values.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`mdlogd_wrapper_subsumed_runs_total{wrapper="variant"} 1`,
		`mdlogd_wrapper_subsumed_runs_total{wrapper="base"} 0`,
		`mdlogd_wrapper_subsumed{wrapper="variant"} 1`,
		`mdlogd_wrapper_subsumed{wrapper="base"} 0`,
		`mdlogd_subsume_merged 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output lacks %q", want)
		}
	}

	// Registry mutation rebuilds the subsumption index: delete the
	// representative and the variant must evaluate its own rules again.
	if status, _ := doJSON(t, http.MethodDelete, ts.URL+"/wrappers/base", ""); status != http.StatusNoContent {
		t.Fatalf("DELETE base: %d", status)
	}
	status, list = doJSON(t, http.MethodGet, ts.URL+"/wrappers", "")
	if status != http.StatusOK {
		t.Fatalf("GET /wrappers: %d", status)
	}
	for _, raw := range list["wrappers"].([]any) {
		info := raw.(map[string]any)
		if sub, ok := info["subsume"].(map[string]any); ok && sub["mode"] == "subsumed" {
			t.Fatalf("wrapper %v still subsumed after representative deleted", info["name"])
		}
	}
	status, body = doJSON(t, http.MethodPost, ts.URL+"/extractall", page)
	if status != http.StatusOK {
		t.Fatalf("extractall after delete: %d", status)
	}
	for _, raw := range body["results"].([]any) {
		res := raw.(map[string]any)
		if res["wrapper"] == "variant" {
			if fmt.Sprint(intSlice(t, res["nodes"])) != fmt.Sprint(want) {
				t.Fatalf("variant after delete: %v, want %v", res["nodes"], want)
			}
		}
	}
}
