package service

// Shard-mode tests: the consistent-hash ring's balance and
// minimal-movement properties, the worker-side ownership guard, and
// the front tier end-to-end (routing, fan-out CRUD, batch splitting,
// backpressure, drain/failover).

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// ringKeys returns n deterministic pseudo-random 64-bit keys.
func ringKeys(n int) []uint64 {
	rng := rand.New(rand.NewSource(42))
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64()
	}
	return out
}

// TestRingBalance is the property test from the issue: over 10k
// hashed documents and 4 workers, every worker owns its fair share
// ±20%.
func TestRingBalance(t *testing.T) {
	const keys = 10_000
	const workers = 4
	r := NewRing(workers, 0)
	counts := make([]int, workers)
	for _, k := range ringKeys(keys) {
		counts[r.Lookup(k)]++
	}
	fair := float64(keys) / workers
	for i, c := range counts {
		if dev := (float64(c) - fair) / fair; dev < -0.20 || dev > 0.20 {
			t.Errorf("worker %d owns %d of %d keys (%.1f%% off fair share; bound ±20%%); counts %v",
				i, c, keys, dev*100, counts)
		}
	}
}

// TestRingBalanceRealHashes repeats the balance property over actual
// document content hashes (HashDoc → ringKey), not synthetic keys.
func TestRingBalanceRealHashes(t *testing.T) {
	const keys = 10_000
	const workers = 4
	r := NewRing(workers, 0)
	counts := make([]int, workers)
	var buf [8]byte
	for i := 0; i < keys; i++ {
		binary.BigEndian.PutUint64(buf[:], uint64(i))
		doc := fmt.Sprintf("<html><body>doc %x</body></html>", buf)
		counts[r.Lookup(HashDoc([]byte(doc)).ringKey())]++
	}
	fair := float64(keys) / workers
	for i, c := range counts {
		if dev := (float64(c) - fair) / fair; dev < -0.20 || dev > 0.20 {
			t.Errorf("worker %d owns %d of %d content hashes (%.1f%% off fair); counts %v",
				i, c, keys, dev*100, counts)
		}
	}
}

// TestRingMinimalMovement: growing 4 → 5 workers may move only the
// keys the new worker takes (≈1/5, generously bounded at 1.5×fair),
// and every moved key must move TO the new worker; shrinking 5 → 4
// moves only the removed worker's keys, redistributed across the
// survivors.
func TestRingMinimalMovement(t *testing.T) {
	const keys = 10_000
	keysList := ringKeys(keys)
	r4, r5 := NewRing(4, 0), NewRing(5, 0)

	moved := 0
	for _, k := range keysList {
		o4, o5 := r4.Lookup(k), r5.Lookup(k)
		if o4 != o5 {
			moved++
			if o5 != 4 {
				t.Fatalf("key %x moved %d -> %d on grow; only moves to the new worker 4 are allowed", k, o4, o5)
			}
		}
	}
	fair := keys / 5
	if moved > fair*3/2 {
		t.Errorf("grow 4->5 moved %d keys, want <= %d (1.5x fair share)", moved, fair*3/2)
	}
	if moved == 0 {
		t.Error("grow 4->5 moved nothing; the new worker owns no keys")
	}

	// Shrink is the same comparison read the other way: keys owned by
	// worker 4 in r5 must scatter; all others stay put.
	for _, k := range keysList {
		o5, o4 := r5.Lookup(k), r4.Lookup(k)
		if o5 != 4 && o5 != o4 {
			t.Fatalf("key %x owned by surviving worker %d moved to %d on shrink", k, o5, o4)
		}
	}
}

// TestRingFailoverWalk: a dead worker's keys spill to survivors, and
// keys owned by live workers do not move.
func TestRingFailoverWalk(t *testing.T) {
	r := NewRing(4, 0)
	alive := func(dead int) func(int) bool {
		return func(i int) bool { return i != dead }
	}
	spilled := make([]int, 4)
	for _, k := range ringKeys(5_000) {
		owner := r.Lookup(k)
		got := r.LookupAlive(k, alive(2))
		if owner != 2 {
			if got != owner {
				t.Fatalf("key %x owned by live worker %d rerouted to %d", k, owner, got)
			}
			continue
		}
		if got == 2 {
			t.Fatalf("key %x still routed to dead worker", k)
		}
		spilled[got]++
	}
	for i, c := range spilled {
		if i != 2 && c == 0 {
			t.Errorf("failover spilled nothing to worker %d (spread %v); spill should scatter", i, spilled)
		}
	}
	if r.LookupAlive(1, func(int) bool { return false }) != -1 {
		t.Error("LookupAlive with no one alive should return -1")
	}
}

func TestParseShardOf(t *testing.T) {
	idx, n, err := ParseShardOf("2/4")
	if err != nil || idx != 2 || n != 4 {
		t.Fatalf("ParseShardOf(2/4) = %d, %d, %v", idx, n, err)
	}
	for _, bad := range []string{"", "3", "4/4", "-1/4", "a/b", "1/0", "1/-2"} {
		if _, _, err := ParseShardOf(bad); err == nil {
			t.Errorf("ParseShardOf(%q) accepted", bad)
		}
	}
}

// TestShardOwnershipGuard: a worker booted -shard-of rejects documents
// the ring assigns elsewhere with 421, accepts its own, and counts the
// misroutes.
func TestShardOwnershipGuard(t *testing.T) {
	const n = 4
	ring := NewRing(n, 0)
	// Find documents owned by shard 0 and by some other shard.
	var mine, theirs string
	for i := 0; mine == "" || theirs == ""; i++ {
		doc := fmt.Sprintf("<html><body><table><tr><td>doc %d</td></tr></table></body></html>", i)
		if ring.Lookup(HashDoc([]byte(doc)).ringKey()) == 0 {
			if mine == "" {
				mine = doc
			}
		} else if theirs == "" {
			theirs = doc
		}
	}
	cfg := bootConfig()
	cfg.ShardOf = "0/" + strconv.Itoa(n)
	_, ts := newTestServer(t, cfg)

	if status, body := doJSON(t, http.MethodPost, ts.URL+"/extract/items", mine); status != http.StatusOK {
		t.Fatalf("owned doc: status %d, body %v", status, body)
	}
	status, body := doJSON(t, http.MethodPost, ts.URL+"/extract/items", theirs)
	if status != http.StatusMisdirectedRequest {
		t.Fatalf("foreign doc: status %d, want 421; body %v", status, body)
	}
	status, stats := doJSON(t, http.MethodGet, ts.URL+"/stats", "")
	if status != http.StatusOK {
		t.Fatal("stats failed")
	}
	shard := stats["service"].(map[string]any)["shard"].(map[string]any)
	if shard["index"].(float64) != 0 || shard["of"].(float64) != n || shard["misrouted"].(float64) != 1 {
		t.Errorf("shard stats %v, want index=0 of=%d misrouted=1", shard, n)
	}
}

// fleet boots n workers with -shard-of plus a front tier over them,
// all on httptest servers, and returns the front's base URL.
func fleet(t *testing.T, n int, workerCfg func(i int) *Config) (*Front, string, []*Server) {
	t.Helper()
	urls := make([]string, n)
	servers := make([]*Server, n)
	for i := 0; i < n; i++ {
		cfg := workerCfg(i)
		cfg.ShardOf = fmt.Sprintf("%d/%d", i, n)
		s, ts := newTestServer(t, cfg)
		urls[i], servers[i] = ts.URL, s
	}
	f, err := NewFront(FrontConfig{Workers: urls})
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(f.Handler())
	t.Cleanup(fts.Close)
	return f, fts.URL, servers
}

// TestFrontEndToEnd: register through the front (fan-out), extract
// many documents through it (content routing), and require every
// worker-side ownership guard to stay silent while results match a
// direct evaluation.
func TestFrontEndToEnd(t *testing.T) {
	f, front, servers := fleet(t, 4, func(int) *Config { return &Config{} })

	spec, _ := json.Marshal(map[string]any{"lang": "elog", "source": elogSrc})
	status, body := doJSON(t, http.MethodPut, front+"/wrappers/items", string(spec))
	if status != http.StatusCreated {
		t.Fatalf("front PUT: status %d, body %v", status, body)
	}
	for i, s := range servers {
		if s.Registry().Len() != 1 {
			t.Fatalf("worker %d registry len %d after fan-out PUT", i, s.Registry().Len())
		}
	}

	// Extract 40 distinct documents twice; the repeat of each must land
	// on the same worker (its cache shard) — visible as zero misroutes
	// and one dedup hit per repeat.
	docs := make([]string, 40)
	for i := range docs {
		docs[i] = fmt.Sprintf("<html><body><table><tr><td>row %d</td></tr></table></body></html>", i)
	}
	for round := 0; round < 2; round++ {
		for i, doc := range docs {
			status, body := doJSON(t, http.MethodPost, front+"/extract/items", doc)
			if status != http.StatusOK {
				t.Fatalf("round %d doc %d: status %d, body %v", round, i, status, body)
			}
			if len(intSlice(t, body["nodes"])) != 1 {
				t.Fatalf("round %d doc %d: nodes %v, want 1", round, i, body["nodes"])
			}
		}
	}
	var hits, misrouted int64
	touched := 0
	for _, s := range servers {
		cs := s.docs.stats()
		hits += cs.hits
		misrouted += s.shardMisrouted.Load()
		if cs.entries > 0 {
			touched++
		}
	}
	if misrouted != 0 {
		t.Errorf("front routing tripped %d worker ownership guards", misrouted)
	}
	if hits != int64(len(docs)) {
		t.Errorf("repeat round produced %d dedup hits, want %d (stable routing)", hits, len(docs))
	}
	if touched < 2 {
		t.Errorf("only %d of 4 workers received documents; routing is not spreading", touched)
	}

	// GET /wrappers proxies to a worker.
	status, list := doJSON(t, http.MethodGet, front+"/wrappers", "")
	if status != http.StatusOK || len(list["wrappers"].([]any)) != 1 {
		t.Errorf("front list: status %d, body %v", status, list)
	}
	// /fleet reports all four workers healthy-by-default.
	status, fl := doJSON(t, http.MethodGet, front+"/fleet", "")
	if status != http.StatusOK || len(fl["workers"].([]any)) != 4 {
		t.Errorf("fleet: status %d, body %v", status, fl)
	}
	_ = f
}

// TestFrontBatchSplit: one /batchall envelope splits into per-worker
// sub-batches and merges back in input order, duplicates dedup on
// their owning worker.
func TestFrontBatchSplit(t *testing.T) {
	_, front, servers := fleet(t, 4, func(int) *Config { return bootConfig() })
	docs := make([]map[string]any, 20)
	for i := range docs {
		html := fmt.Sprintf("<html><body><table><tr><td>batch %d</td></tr></table></body></html>", i%10)
		docs[i] = map[string]any{"id": fmt.Sprintf("d%d", i), "html": html}
	}
	b, _ := json.Marshal(map[string]any{"docs": docs})
	status, body := doJSON(t, http.MethodPost, front+"/batchall", string(b))
	if status != http.StatusOK {
		t.Fatalf("front batchall: status %d, body %v", status, body)
	}
	results := body["results"].([]any)
	if len(results) != len(docs) {
		t.Fatalf("got %d results, want %d", len(results), len(docs))
	}
	for i, raw := range results {
		item := raw.(map[string]any)
		if int(item["index"].(float64)) != i || item["id"] != docs[i]["id"] {
			t.Errorf("result %d: index %v id %v (merge lost input order)", i, item["index"], item["id"])
		}
		if errMsg, ok := item["error"]; ok {
			t.Errorf("result %d failed: %v", i, errMsg)
		}
	}
	var hits, misrouted int64
	for _, s := range servers {
		hits += s.docs.stats().hits
		misrouted += s.shardMisrouted.Load()
	}
	if misrouted != 0 {
		t.Errorf("batch split misrouted %d documents", misrouted)
	}
	if hits != 10 {
		t.Errorf("duplicate halves produced %d dedup hits, want 10", hits)
	}
}

// TestFrontBackpressure: at the per-worker in-flight bound the front
// sheds with 503 and an integer Retry-After instead of queueing.
func TestFrontBackpressure(t *testing.T) {
	block := make(chan struct{})
	var once sync.Once
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
			return
		}
		<-block
		writeJSON(w, http.StatusOK, map[string]any{"nodes": []int{}})
	}))
	defer slow.Close()
	defer once.Do(func() { close(block) })

	f, err := NewFront(FrontConfig{Workers: []string{slow.URL}, WorkerInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(f.Handler())
	defer fts.Close()

	go http.Post(fts.URL+"/extract/items", "text/html", strings.NewReader(page))
	// Wait until the first request actually holds the worker slot.
	deadline := time.Now().Add(5 * time.Second)
	for len(f.workers[0].sem) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never occupied the worker slot")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Post(fts.URL+"/extract/items", "text/html", strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second request: status %d, want 503", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After %q is not a positive integer of seconds", ra)
	}
	once.Do(func() { close(block) })
}

// TestFrontDrainAndFailover: draining a worker reroutes its documents
// to survivors without 421s from THEM (they see foreign keys only
// because their guard is off in this fleet — so run guardless), and
// undraining restores routing.
func TestFrontDrainAndFailover(t *testing.T) {
	// Workers run WITHOUT the -shard-of guard here: draining
	// deliberately reroutes keys to non-owners, which a guard would
	// (correctly) reject with 421. Fleets that drain workers either run
	// guardless or undrain before the cache-purity guard matters — the
	// guard exists to catch misconfigured routing, not failover.
	urls := make([]string, 2)
	for i := 0; i < 2; i++ {
		_, ts := newTestServer(t, bootConfig())
		urls[i] = ts.URL
	}
	f2, err := NewFront(FrontConfig{Workers: urls})
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(f2.Handler())
	defer fts.Close()
	front := fts.URL

	if status, body := doJSON(t, http.MethodPost, front+"/fleet/0/drain", ""); status != http.StatusOK || body["draining"] != true {
		t.Fatalf("drain: status %d, body %v", status, body)
	}
	// Every document now lands on worker 1.
	for i := 0; i < 10; i++ {
		doc := fmt.Sprintf("<html><body><table><tr><td>drain %d</td></tr></table></body></html>", i)
		if status, body := doJSON(t, http.MethodPost, front+"/extract/items", doc); status != http.StatusOK {
			t.Fatalf("extract under drain: status %d, body %v", status, body)
		}
	}
	if fwd := f2.workers[0].forwarded.Load(); fwd != 0 {
		t.Errorf("draining worker still received %d requests", fwd)
	}
	if status, body := doJSON(t, http.MethodPost, front+"/fleet/0/undrain", ""); status != http.StatusOK || body["draining"] != false {
		t.Fatalf("undrain: status %d, body %v", status, body)
	}
	if status, _ := doJSON(t, http.MethodPost, front+"/fleet/9/drain", ""); status != http.StatusNotFound {
		t.Errorf("drain of unknown worker: status %d, want 404", status)
	}

	// Both drained: shed with integer Retry-After.
	doJSON(t, http.MethodPost, front+"/fleet/0/drain", "")
	doJSON(t, http.MethodPost, front+"/fleet/1/drain", "")
	req, _ := http.NewRequest(http.MethodPost, front+"/extract/items", strings.NewReader(page))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fully drained fleet: status %d, want 503", resp.StatusCode)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Errorf("Retry-After %q is not a positive integer", resp.Header.Get("Retry-After"))
	}
}

// TestFrontSessionAffinity: document sessions route by id — PUT,
// PATCH and extractall for one id land on one worker, so the session
// is usable through the front.
func TestFrontSessionAffinity(t *testing.T) {
	_, front, servers := fleet(t, 3, func(int) *Config { return bootConfig() })
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("sess%d", i)
		if status, body := doJSON(t, http.MethodPut, front+"/documents/"+id, page); status != http.StatusCreated {
			t.Fatalf("PUT %s: status %d, body %v", id, status, body)
		}
		status, body := doJSON(t, http.MethodPost, front+"/documents/"+id+"/extractall", "")
		if status != http.StatusOK {
			t.Fatalf("extractall %s: status %d, body %v (session affinity broken?)", id, status, body)
		}
		if status, _ := doJSON(t, http.MethodDelete, front+"/documents/"+id, ""); status != http.StatusNoContent {
			t.Fatalf("DELETE %s: status %d", id, status)
		}
	}
	total := 0
	for _, s := range servers {
		total += s.sessions.len()
	}
	if total != 0 {
		t.Errorf("%d sessions leaked across the fleet", total)
	}
}
