package service

// Persistent wrapper store. With Config.DataDir set (mdlogd -data-dir)
// the registry survives restarts: every successful PUT/DELETE
// /wrappers/{name} rewrites one versioned JSON snapshot file with an
// atomic replace-on-write (temp file + fsync + rename), so the file on
// disk is always a complete, parseable registry — a crash mid-save
// leaves the previous snapshot intact. Boot loads the snapshot before
// the config's boot wrappers (stored entries win: they are the
// daemon's runtime state, the config only seeds missing names), and a
// SIGHUP re-reads it through Server.Reload for zero-downtime wrapper
// rollout from outside the HTTP surface. A snapshot that fails to
// parse fails the boot loudly — a daemon that silently boots empty
// would serve 404s where traffic expects extractions.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// storeFormatVersion is the on-disk schema version; Load rejects files
// written by a future schema rather than misreading them.
const storeFormatVersion = 1

// storeFileName is the registry snapshot inside the data dir.
const storeFileName = "wrappers.json"

// StoredWrapper is one persisted registry entry: the compilable spec
// plus the identity fields that must survive a restart.
type StoredWrapper struct {
	// Name is the registry key.
	Name string `json:"name"`
	// Version counts installs under this name (1 on first register,
	// +1 per replacement), surviving restarts.
	Version int64 `json:"version"`
	// Registered is when this version was installed.
	Registered time.Time `json:"registered"`
	// Spec is the source description the wrapper recompiles from.
	Spec WrapperSpec `json:"spec"`
}

// storeFile is the JSON document on disk.
type storeFile struct {
	FormatVersion int             `json:"format_version"`
	Wrappers      []StoredWrapper `json:"wrappers"`
}

// Store persists the wrapper registry under a data directory. All
// methods are safe for concurrent use; Save calls serialize.
type Store struct {
	path string // the snapshot file
	mu   sync.Mutex
}

// OpenStore prepares the data directory (creating it if needed) and
// returns the store handle. It does not read the snapshot — see Load.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("service: store data dir must not be empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: store: %w", err)
	}
	return &Store{path: filepath.Join(dir, storeFileName)}, nil
}

// Path returns the snapshot file path (for /stats and error messages).
func (st *Store) Path() string { return st.path }

// Load reads the registry snapshot. A missing file is an empty
// registry (first boot); anything else that fails — unreadable file,
// malformed JSON, unknown fields, a future format version — is a hard
// error naming the file, never a silently-empty registry.
func (st *Store) Load() ([]StoredWrapper, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	b, err := os.ReadFile(st.path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: store %s: %w", st.path, err)
	}
	var f storeFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("service: store %s is corrupt: %w (refusing to boot with an empty registry; repair or remove the file)", st.path, err)
	}
	if f.FormatVersion != storeFormatVersion {
		return nil, fmt.Errorf("service: store %s has format version %d (this build reads %d)", st.path, f.FormatVersion, storeFormatVersion)
	}
	for i, sw := range f.Wrappers {
		if err := ValidateName(sw.Name); err != nil {
			return nil, fmt.Errorf("service: store %s entry %d: %w", st.path, i, err)
		}
	}
	return f.Wrappers, nil
}

// Save atomically replaces the snapshot with ws: the new document is
// written to a temp file in the same directory, fsynced, and renamed
// over the snapshot — readers (and a crashed writer's successor) see
// either the old complete file or the new complete one.
func (st *Store) Save(ws []StoredWrapper) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	data, err := json.MarshalIndent(storeFile{FormatVersion: storeFormatVersion, Wrappers: ws}, "", "  ")
	if err != nil {
		return fmt.Errorf("service: store: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(st.path)
	tmp, err := os.CreateTemp(dir, storeFileName+".tmp*")
	if err != nil {
		return fmt.Errorf("service: store: %w", err)
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), st.path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: store %s: %w", st.path, werr)
	}
	return nil
}

// storedSnapshot renders the registry's current entries in persisted
// form (sorted by name, like Registry.Snapshot).
func storedSnapshot(reg *Registry) []StoredWrapper {
	ws := reg.Snapshot()
	out := make([]StoredWrapper, len(ws))
	for i, w := range ws {
		out[i] = StoredWrapper{Name: w.Name, Version: w.Version, Registered: w.Registered, Spec: w.Spec}
	}
	return out
}

// persist writes the registry's current state through the store, if
// one is configured, keeping the save/error counters. Mutation
// handlers call it after the registry change; a failed save leaves the
// in-memory registry authoritative (the next successful save rewrites
// the whole snapshot) and surfaces the error to the caller.
func (s *Server) persist() error {
	if s.store == nil {
		return nil
	}
	if err := s.store.Save(storedSnapshot(s.reg)); err != nil {
		s.storeErrors.Add(1)
		return err
	}
	s.storeSaves.Add(1)
	return nil
}

// Reload re-reads the store snapshot and atomically replaces the
// registry contents with it — the SIGHUP path: an operator (or another
// process) rewrites the snapshot file, signals the daemon, and
// in-flight requests finish on the wrappers they resolved while new
// requests see the new registry. Without a data dir it reports an
// error. Compilation happens before the swap, so a snapshot with a
// broken wrapper leaves the serving registry untouched.
func (s *Server) Reload() error {
	if s.store == nil {
		return fmt.Errorf("service: reload needs a data dir (-data-dir)")
	}
	stored, err := s.store.Load()
	if err != nil {
		return err
	}
	ws := make([]*Wrapper, len(stored))
	for i, sw := range stored {
		q, err := s.withDefaults(sw.Spec).Compile()
		if err != nil {
			return fmt.Errorf("service: reload: wrapper %q: %w", sw.Name, err)
		}
		ws[i] = &Wrapper{Name: sw.Name, Spec: sw.Spec, Query: q, Version: sw.Version, Registered: sw.Registered}
	}
	s.reg.ReplaceAll(ws)
	s.reloads.Add(1)
	return nil
}
