package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	mdlog "mdlog"
	"mdlog/internal/wrap"
)

// outputMode selects what an extraction returns.
type outputMode int

const (
	outNodes  outputMode = iota // selected node ids (CompiledQuery.Select)
	outAssign                   // pattern → node ids (WrapAssign)
	outXML                      // wrapped output tree serialized as XML
	outSpans                    // span relations (spanner wrappers only)
)

func parseOutput(r *http.Request) (outputMode, error) {
	switch v := r.URL.Query().Get("output"); v {
	case "", "nodes":
		return outNodes, nil
	case "assign":
		return outAssign, nil
	case "xml":
		return outXML, nil
	case "spans":
		return outSpans, nil
	default:
		return 0, fmt.Errorf("unknown output %q (want nodes, assign, xml or spans)", v)
	}
}

// spansOK rejects ?output=spans against a wrapper that cannot produce
// spans — only LangSpanner wrappers carry span rules, and a silent
// empty result would mask the mismatch. Reports false after writing
// the error response.
func spansOK(w http.ResponseWriter, wr *Wrapper, mode outputMode) bool {
	if mode == outSpans && wr.Query.Language() != mdlog.LangSpanner {
		writeError(w, http.StatusBadRequest,
			"output spans requires a spanner wrapper (%q is lang %s)", wr.Name, wr.Spec.Lang)
		return false
	}
	return true
}

// spanResultJSON keeps empty span results as [] rather than null on
// the wire (non-spanner members under ?output=spans render []).
func spanResultJSON(res mdlog.SpanResult) any {
	if res == nil {
		return []any{}
	}
	return res
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // a write error means the client went away
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]any{"error": fmt.Sprintf(format, args...)})
}

// unavailable writes a 503 whose Retry-After header is guaranteed to
// be an integer number of seconds (RFC 9110 §10.2.3 delay-seconds) —
// every load-shedding path in the daemon and the front tier goes
// through here, so no path can emit a malformed or empty value.
func unavailable(w http.ResponseWriter, seconds int, format string, args ...any) {
	if seconds < 1 {
		seconds = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(seconds))
	writeError(w, http.StatusServiceUnavailable, format, args...)
}

// body caps the request body at maxBody; a negative cap means
// unbounded (http.MaxBytesReader would treat it as zero).
func (s *Server) body(w http.ResponseWriter, r *http.Request) io.Reader {
	if s.maxBody < 0 {
		return r.Body
	}
	return http.MaxBytesReader(w, r.Body, s.maxBody)
}

func (s *Server) wrapper(w http.ResponseWriter, r *http.Request) (*Wrapper, bool) {
	name := r.PathValue("name")
	wr, ok := s.reg.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no wrapper %q registered", name)
		return nil, false
	}
	return wr, true
}

// wrapperInfo is the JSON view of a registry entry; source is included
// only on single-wrapper GETs.
func wrapperInfo(wr *Wrapper, withSource bool) map[string]any {
	info := map[string]any{
		"name":       wr.Name,
		"lang":       wr.Spec.Lang.String(),
		"pred":       wr.Query.QueryPred(),
		"extract":    wr.Query.ExtractPreds(),
		"version":    wr.Version,
		"registered": wr.Registered.UTC().Format(time.RFC3339Nano),
	}
	if withSource {
		info["source"] = wr.Spec.Source
	}
	return info
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "wrappers": s.reg.Len()})
}

// ---------------------------------------------------------------------
// Wrapper CRUD.

func (s *Server) handleListWrappers(w http.ResponseWriter, _ *http.Request) {
	ws := s.reg.Snapshot()
	plans, _, _ := s.subsumePlans()
	infos := make([]map[string]any, len(ws))
	for i, wr := range ws {
		infos[i] = wrapperInfo(wr, false)
		if p, ok := plans[wr.Name]; ok {
			infos[i]["subsume"] = memberPlanJSON(p)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"wrappers": infos})
}

func (s *Server) handlePutWrapper(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var spec WrapperSpec
	dec := json.NewDecoder(s.body(w, r))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, clientErrStatus(err), "invalid wrapper spec: %v", err)
		return
	}
	wr, replaced, err := s.reg.Register(name, s.withDefaults(spec))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.persist(); err != nil {
		// The in-memory registry already serves the new wrapper; the
		// caller learns durability failed and may retry the PUT (the
		// next successful save rewrites the whole snapshot).
		writeError(w, http.StatusInternalServerError, "wrapper registered but not persisted: %v", err)
		return
	}
	status := http.StatusCreated
	if replaced {
		status = http.StatusOK
	}
	writeJSON(w, status, wrapperInfo(wr, false))
}

func (s *Server) handleGetWrapper(w http.ResponseWriter, r *http.Request) {
	wr, ok := s.wrapper(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, wrapperInfo(wr, true))
}

func (s *Server) handleDeleteWrapper(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.reg.Remove(name) {
		writeError(w, http.StatusNotFound, "no wrapper %q registered", name)
		return
	}
	if err := s.persist(); err != nil {
		writeError(w, http.StatusInternalServerError, "wrapper removed but not persisted: %v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ---------------------------------------------------------------------
// Extraction.

// handleExtract resolves the request body — one HTML document —
// through the content-hash dedup cache (or streams it through
// ParseHTMLReader when the cache is off) and runs the wrapper on it.
func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	wr, ok := s.wrapper(w, r)
	if !ok {
		return
	}
	mode, err := parseOutput(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !spansOK(w, wr, mode) {
		return
	}
	ctx := r.Context()
	// Count the document on acceptance (before parsing), mirroring
	// /batch — so document_errors can never exceed documents.
	s.documents.Add(1)
	doc, ok := s.readDoc(w, r)
	if !ok {
		return
	}
	switch mode {
	case outNodes:
		ids, stats, err := wr.Query.SelectStats(ctx, doc)
		if err != nil {
			s.docErrors.Add(1)
			writeError(w, evalErrStatus(err), "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"wrapper": wr.Name,
			"nodes":   nonNil(ids),
			"stats":   runStatsJSON(stats),
		})
	case outAssign:
		assign, err := wr.Query.Assign(ctx, doc)
		if err != nil {
			s.docErrors.Add(1)
			writeError(w, evalErrStatus(err), "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"wrapper": wr.Name,
			"assign":  assignJSON(assign),
		})
	case outXML:
		out, err := wr.Query.Wrap(ctx, doc)
		if err != nil {
			s.docErrors.Add(1)
			writeError(w, evalErrStatus(err), "%v", err)
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		_ = wrap.WriteXML(w, out)
	case outSpans:
		res, stats, err := wr.Query.SpansStats(ctx, doc)
		if err != nil {
			s.docErrors.Add(1)
			writeError(w, evalErrStatus(err), "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"wrapper": wr.Name,
			"spans":   spanResultJSON(res),
			"stats":   runStatsJSON(stats),
		})
	}
}

// batchRequest is the JSON envelope of POST /batch/{name}.
type batchRequest struct {
	// Docs are processed in order; results carry each doc's index and
	// (if set) id.
	Docs []batchDoc `json:"docs"`
}

// batchDoc is one document of a batch request.
type batchDoc struct {
	// ID is an optional caller-chosen correlation key echoed in the
	// result.
	ID string `json:"id,omitempty"`
	// HTML is the document source.
	HTML string `json:"html"`
}

// decodeBatch parses the shared /batch* request shape: the JSON docs
// envelope plus the NDJSON format selection (?format=ndjson or
// Accept: application/x-ndjson). Reports ok=false after writing the
// error response.
func (s *Server) decodeBatch(w http.ResponseWriter, r *http.Request) (req batchRequest, ndjson, ok bool) {
	ndjson = r.URL.Query().Get("format") == "ndjson" ||
		strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
	dec := json.NewDecoder(s.body(w, r))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, clientErrStatus(err), "invalid batch request: %v", err)
		return req, ndjson, false
	}
	s.documents.Add(int64(len(req.Docs)))
	return req, ndjson, true
}

// emitBatch writes a per-document result channel to the wire: NDJSON
// lines flushed as each document completes, or one JSON document
// (envelope wraps the collected items). If the client goes away
// mid-NDJSON, the channel is drained so the workers can finish.
func emitBatch(w http.ResponseWriter, ndjson bool, expect int, results <-chan map[string]any, envelope func([]map[string]any) map[string]any) {
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		for item := range results {
			if err := enc.Encode(item); err != nil {
				for range results {
				}
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		return
	}
	items := make([]map[string]any, 0, expect)
	for item := range results {
		items = append(items, item)
	}
	writeJSON(w, http.StatusOK, envelope(items))
}

// handleBatch fans the request's documents across the Runner worker
// pool (parse + evaluate both inside the pool) and emits per-document
// results in input order — as one JSON document, or as NDJSON lines
// flushed as each document completes. A document that fails marks only
// its own result; the batch continues.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	wr, ok := s.wrapper(w, r)
	if !ok {
		return
	}
	mode, err := parseOutput(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !spansOK(w, wr, mode) {
		return
	}
	req, ndjson, ok := s.decodeBatch(w, r)
	if !ok {
		return
	}
	results := s.runBatch(r.Context(), wr, mode, req.Docs)
	emitBatch(w, ndjson, len(req.Docs), results, func(items []map[string]any) map[string]any {
		return map[string]any{"wrapper": wr.Name, "results": items}
	})
}

// runBatch pushes docs through the worker pool and yields one JSON
// object per document, in input order. The producer guards its sends
// with ctx, and per-document failures surface in that document's
// "error" field — MapStream's per-item error contract, carried to the
// wire.
func (s *Server) runBatch(ctx context.Context, wr *Wrapper, mode outputMode, docs []batchDoc) <-chan map[string]any {
	srcs := make(chan io.Reader)
	go func() {
		defer close(srcs)
		for _, d := range docs {
			select {
			case srcs <- strings.NewReader(d.HTML):
			case <-ctx.Done():
				return
			}
		}
	}()
	out := make(chan map[string]any)
	finish := func(item map[string]any, index int, err error) map[string]any {
		if id := docs[index].ID; id != "" {
			item["id"] = id
		}
		if err != nil {
			s.docErrors.Add(1)
			item["error"] = err.Error()
		}
		return item
	}
	go func() {
		defer close(out)
		switch mode {
		case outNodes:
			for res := range s.runner.SelectHTMLStream(ctx, wr.Query, srcs) {
				item := map[string]any{"index": res.Index}
				if res.Err == nil {
					item["nodes"] = nonNil(res.Nodes)
				}
				out <- finish(item, res.Index, res.Err)
			}
		case outAssign:
			// Tree-free: only the assignment goes on the wire, so skip
			// output-tree construction entirely.
			for res := range s.runner.AssignHTMLStream(ctx, wr.Query, srcs) {
				item := map[string]any{"index": res.Index}
				if res.Err == nil {
					item["assign"] = assignJSON(res.Assignment)
				}
				out <- finish(item, res.Index, res.Err)
			}
		case outXML:
			for res := range s.runner.WrapHTMLStream(ctx, wr.Query, srcs) {
				item := map[string]any{"index": res.Index}
				if res.Err == nil {
					var buf bytes.Buffer
					if err := wrap.WriteXML(&buf, res.Output); err != nil {
						out <- finish(item, res.Index, err)
						continue
					}
					item["xml"] = buf.String()
				}
				out <- finish(item, res.Index, res.Err)
			}
		case outSpans:
			for res := range s.runner.SpansHTMLStream(ctx, wr.Query, srcs) {
				item := map[string]any{"index": res.Index}
				if res.Err == nil {
					item["spans"] = spanResultJSON(res.Spans)
				}
				out <- finish(item, res.Index, res.Err)
			}
		}
	}()
	return out
}

// ---------------------------------------------------------------------
// Fused all-wrapper extraction.

// setOutput is parseOutput restricted to the modes /extractall and
// /batchall support: per-wrapper XML trees are a per-wrapper concern
// (use /extract/{name}?output=xml), not a fleet one. output=spans is
// allowed — spanner members report their span relations, other members
// report empty ones.
func setOutput(r *http.Request) (outputMode, error) {
	mode, err := parseOutput(r)
	if err != nil {
		return 0, err
	}
	if mode == outXML {
		return 0, fmt.Errorf("output xml is not supported here (use /extract/{name}?output=xml)")
	}
	return mode, nil
}

// setResultItem renders one wrapper's SetResult. Wrapper failures are
// isolated: an "error" field on the failing wrapper's entry, never an
// HTTP error for the whole document.
func setResultItem(res mdlog.SetResult, mode outputMode) map[string]any {
	item := map[string]any{"wrapper": res.Name}
	if res.Err != nil {
		item["error"] = res.Err.Error()
		return item
	}
	switch mode {
	case outNodes:
		item["nodes"] = nonNil(res.IDs)
	case outAssign:
		item["assign"] = assignJSON(res.Assignment)
	case outSpans:
		item["spans"] = spanResultJSON(res.Spans)
	}
	return item
}

// handleExtractAll parses the request body once and runs EVERY
// registered wrapper over it in one fused QuerySet pass — the
// many-wrappers-one-page shape: the base relations are grounded once
// and auxiliary chains shared between wrappers are evaluated once.
func (s *Server) handleExtractAll(w http.ResponseWriter, r *http.Request) {
	mode, err := setOutput(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	set, err := s.querySet()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "building wrapper set: %v", err)
		return
	}
	if set == nil {
		writeJSON(w, http.StatusOK, map[string]any{"wrappers": 0, "fused": 0, "results": []any{}})
		return
	}
	s.documents.Add(1)
	doc, ok := s.readDoc(w, r)
	if !ok {
		return
	}
	results := set.Run(r.Context(), doc)
	items := make([]map[string]any, len(results))
	for i, res := range results {
		items[i] = setResultItem(res, mode)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"wrappers": set.Len(),
		"fused":    set.FusedLen(),
		"results":  items,
	})
}

// handleBatchAll is /batchall: the batch envelope of /batch, every
// registered wrapper per document, one fused pass per document, fanned
// across the Runner worker pool. Response shape mirrors /batch with a
// per-document "results" array of per-wrapper entries.
func (s *Server) handleBatchAll(w http.ResponseWriter, r *http.Request) {
	mode, err := setOutput(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	set, err := s.querySet()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "building wrapper set: %v", err)
		return
	}
	req, ndjson, ok := s.decodeBatch(w, r)
	if !ok {
		return
	}
	results := s.runBatchAll(r.Context(), set, mode, req.Docs)
	emitBatch(w, ndjson, len(req.Docs), results, func(items []map[string]any) map[string]any {
		return map[string]any{"results": items}
	})
}

// runBatchAll pushes docs through Runner.SetHTMLStream and yields one
// JSON object per document, in input order. A document-level failure
// (unparseable HTML) sets the document's "error"; wrapper-level
// failures surface inside its "results" entries. An empty registry
// still yields one entry per document (with empty results), so the
// response always has the one-entry-per-document shape of /batch.
func (s *Server) runBatchAll(ctx context.Context, set *mdlog.QuerySet, mode outputMode, docs []batchDoc) <-chan map[string]any {
	out := make(chan map[string]any)
	if set == nil {
		go func() {
			defer close(out)
			for i, d := range docs {
				item := map[string]any{"index": i, "results": []any{}}
				if d.ID != "" {
					item["id"] = d.ID
				}
				select {
				case out <- item:
				case <-ctx.Done():
					return
				}
			}
		}()
		return out
	}
	if len(docs) == 0 {
		close(out)
		return out
	}
	if s.docs != nil || s.shardN > 0 {
		return s.runBatchAllCached(ctx, set, mode, docs, out)
	}
	srcs := make(chan io.Reader)
	go func() {
		defer close(srcs)
		for _, d := range docs {
			select {
			case srcs <- strings.NewReader(d.HTML):
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		defer close(out)
		for res := range s.runner.SetHTMLStream(ctx, set, srcs) {
			item := map[string]any{"index": res.Index}
			if id := docs[res.Index].ID; id != "" {
				item["id"] = id
			}
			if res.Err != nil {
				s.docErrors.Add(1)
				item["error"] = res.Err.Error()
			} else {
				items := make([]map[string]any, len(res.Results))
				for i, sr := range res.Results {
					items[i] = setResultItem(sr, mode)
				}
				item["results"] = items
			}
			out <- item
		}
	}()
	return out
}

// runBatchAllCached is runBatchAll with the content-hash dedup cache
// (or the shard-ownership guard) in the loop: every document resolves
// through Server.resolveDoc first — duplicates share one parsed arena
// and its memoized fused results — and the worker pool then runs the
// set over trees (Runner.SetStream). A misrouted document (shard mode)
// fails only its own entry, mirroring a parse failure.
func (s *Server) runBatchAllCached(ctx context.Context, set *mdlog.QuerySet, mode outputMode, docs []batchDoc, out chan map[string]any) <-chan map[string]any {
	trees := make([]*mdlog.Tree, len(docs))
	errs := make([]error, len(docs))
	order := make([]int, 0, len(docs)) // fed position → doc index
	for i, d := range docs {
		trees[i], errs[i] = s.resolveDoc([]byte(d.HTML))
		if errs[i] == nil {
			order = append(order, i)
		} else {
			s.docErrors.Add(1)
		}
	}
	feed := make(chan *mdlog.Tree)
	go func() {
		defer close(feed)
		for _, i := range order {
			select {
			case feed <- trees[i]:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		defer close(out)
		emit := func(item map[string]any) bool {
			select {
			case out <- item:
				return true
			case <-ctx.Done():
				return false
			}
		}
		item := func(i int) map[string]any {
			it := map[string]any{"index": i}
			if id := docs[i].ID; id != "" {
				it["id"] = id
			}
			return it
		}
		// Stream results arrive in fed order — increasing doc index —
		// so failed documents interleave back by flushing every failed
		// index below the next streamed one.
		next := 0
		flushErrsBelow := func(di int) bool {
			for ; next < di; next++ {
				if errs[next] == nil {
					continue
				}
				it := item(next)
				it["error"] = errs[next].Error()
				if !emit(it) {
					return false
				}
			}
			return true
		}
		for res := range s.runner.SetStream(ctx, set, feed) {
			di := order[res.Index]
			if !flushErrsBelow(di) {
				return
			}
			next = di + 1
			it := item(di)
			if res.Err != nil {
				s.docErrors.Add(1)
				it["error"] = res.Err.Error()
			} else {
				items := make([]map[string]any, len(res.Results))
				for i, sr := range res.Results {
					items[i] = setResultItem(sr, mode)
				}
				it["results"] = items
			}
			if !emit(it) {
				return
			}
		}
		flushErrsBelow(len(docs))
	}()
	return out
}

// ---------------------------------------------------------------------
// Small helpers.

// nonNil keeps empty selections as [] rather than null on the wire.
func nonNil(ids []int) []int {
	if ids == nil {
		return []int{}
	}
	return ids
}

func assignJSON(a mdlog.Assignment) map[string][]int {
	m := make(map[string][]int, len(a))
	for pat, ids := range a {
		m[pat] = nonNil(ids)
	}
	return m
}

// clientErrStatus maps a document-read failure: the client's body was
// unreadable or over the size cap.
func clientErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// evalErrStatus maps an evaluation failure: cancellation came from the
// client; anything else is the wrapper's (i.e. our) problem.
func evalErrStatus(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return 499 // client closed request (nginx convention)
	}
	return http.StatusUnprocessableEntity
}
