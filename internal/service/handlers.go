package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	mdlog "mdlog"
	"mdlog/internal/wrap"
)

// outputMode selects what an extraction returns.
type outputMode int

const (
	outNodes  outputMode = iota // selected node ids (CompiledQuery.Select)
	outAssign                   // pattern → node ids (WrapAssign)
	outXML                      // wrapped output tree serialized as XML
)

func parseOutput(r *http.Request) (outputMode, error) {
	switch v := r.URL.Query().Get("output"); v {
	case "", "nodes":
		return outNodes, nil
	case "assign":
		return outAssign, nil
	case "xml":
		return outXML, nil
	default:
		return 0, fmt.Errorf("unknown output %q (want nodes, assign or xml)", v)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // a write error means the client went away
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]any{"error": fmt.Sprintf(format, args...)})
}

// body caps the request body at maxBody; a negative cap means
// unbounded (http.MaxBytesReader would treat it as zero).
func (s *Server) body(w http.ResponseWriter, r *http.Request) io.Reader {
	if s.maxBody < 0 {
		return r.Body
	}
	return http.MaxBytesReader(w, r.Body, s.maxBody)
}

func (s *Server) wrapper(w http.ResponseWriter, r *http.Request) (*Wrapper, bool) {
	name := r.PathValue("name")
	wr, ok := s.reg.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no wrapper %q registered", name)
		return nil, false
	}
	return wr, true
}

// wrapperInfo is the JSON view of a registry entry; source is included
// only on single-wrapper GETs.
func wrapperInfo(wr *Wrapper, withSource bool) map[string]any {
	info := map[string]any{
		"name":       wr.Name,
		"lang":       wr.Spec.Lang.String(),
		"pred":       wr.Query.QueryPred(),
		"extract":    wr.Query.ExtractPreds(),
		"registered": wr.Registered.UTC().Format(time.RFC3339Nano),
	}
	if withSource {
		info["source"] = wr.Spec.Source
	}
	return info
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "wrappers": s.reg.Len()})
}

// ---------------------------------------------------------------------
// Wrapper CRUD.

func (s *Server) handleListWrappers(w http.ResponseWriter, _ *http.Request) {
	ws := s.reg.Snapshot()
	infos := make([]map[string]any, len(ws))
	for i, wr := range ws {
		infos[i] = wrapperInfo(wr, false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"wrappers": infos})
}

func (s *Server) handlePutWrapper(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var spec WrapperSpec
	dec := json.NewDecoder(s.body(w, r))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, clientErrStatus(err), "invalid wrapper spec: %v", err)
		return
	}
	wr, replaced, err := s.reg.Register(name, s.withDefaults(spec))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	status := http.StatusCreated
	if replaced {
		status = http.StatusOK
	}
	writeJSON(w, status, wrapperInfo(wr, false))
}

func (s *Server) handleGetWrapper(w http.ResponseWriter, r *http.Request) {
	wr, ok := s.wrapper(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, wrapperInfo(wr, true))
}

func (s *Server) handleDeleteWrapper(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.reg.Remove(name) {
		writeError(w, http.StatusNotFound, "no wrapper %q registered", name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ---------------------------------------------------------------------
// Extraction.

// handleExtract streams the request body — one HTML document — through
// ParseHTMLReader into the arena pipeline and runs the wrapper on it.
func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	wr, ok := s.wrapper(w, r)
	if !ok {
		return
	}
	mode, err := parseOutput(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx := r.Context()
	// Count the document on acceptance (before parsing), mirroring
	// /batch — so document_errors can never exceed documents.
	s.documents.Add(1)
	doc, err := mdlog.ParseHTMLReader(s.body(w, r))
	if err != nil {
		s.docErrors.Add(1)
		writeError(w, clientErrStatus(err), "reading document: %v", err)
		return
	}
	switch mode {
	case outNodes:
		ids, stats, err := wr.Query.SelectStats(ctx, doc)
		if err != nil {
			s.docErrors.Add(1)
			writeError(w, evalErrStatus(err), "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"wrapper": wr.Name,
			"nodes":   nonNil(ids),
			"stats":   runStatsJSON(stats),
		})
	case outAssign:
		assign, err := wr.Query.Assign(ctx, doc)
		if err != nil {
			s.docErrors.Add(1)
			writeError(w, evalErrStatus(err), "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"wrapper": wr.Name,
			"assign":  assignJSON(assign),
		})
	case outXML:
		out, err := wr.Query.Wrap(ctx, doc)
		if err != nil {
			s.docErrors.Add(1)
			writeError(w, evalErrStatus(err), "%v", err)
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		_ = wrap.WriteXML(w, out)
	}
}

// batchRequest is the JSON envelope of POST /batch/{name}.
type batchRequest struct {
	// Docs are processed in order; results carry each doc's index and
	// (if set) id.
	Docs []batchDoc `json:"docs"`
}

// batchDoc is one document of a batch request.
type batchDoc struct {
	// ID is an optional caller-chosen correlation key echoed in the
	// result.
	ID string `json:"id,omitempty"`
	// HTML is the document source.
	HTML string `json:"html"`
}

// handleBatch fans the request's documents across the Runner worker
// pool (parse + evaluate both inside the pool) and emits per-document
// results in input order — as one JSON document, or as NDJSON lines
// flushed as each document completes (?format=ndjson or Accept:
// application/x-ndjson). A document that fails marks only its own
// result; the batch continues.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	wr, ok := s.wrapper(w, r)
	if !ok {
		return
	}
	mode, err := parseOutput(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ndjson := r.URL.Query().Get("format") == "ndjson" ||
		strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
	var req batchRequest
	dec := json.NewDecoder(s.body(w, r))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, clientErrStatus(err), "invalid batch request: %v", err)
		return
	}
	ctx := r.Context()
	s.documents.Add(int64(len(req.Docs)))

	results := s.runBatch(ctx, wr, mode, req.Docs)
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		for item := range results {
			if err := enc.Encode(item); err != nil {
				// Client went away; drain so the workers can finish.
				for range results {
				}
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		return
	}
	items := make([]map[string]any, 0, len(req.Docs))
	for item := range results {
		items = append(items, item)
	}
	writeJSON(w, http.StatusOK, map[string]any{"wrapper": wr.Name, "results": items})
}

// runBatch pushes docs through the worker pool and yields one JSON
// object per document, in input order. The producer guards its sends
// with ctx, and per-document failures surface in that document's
// "error" field — MapStream's per-item error contract, carried to the
// wire.
func (s *Server) runBatch(ctx context.Context, wr *Wrapper, mode outputMode, docs []batchDoc) <-chan map[string]any {
	srcs := make(chan io.Reader)
	go func() {
		defer close(srcs)
		for _, d := range docs {
			select {
			case srcs <- strings.NewReader(d.HTML):
			case <-ctx.Done():
				return
			}
		}
	}()
	out := make(chan map[string]any)
	finish := func(item map[string]any, index int, err error) map[string]any {
		if id := docs[index].ID; id != "" {
			item["id"] = id
		}
		if err != nil {
			s.docErrors.Add(1)
			item["error"] = err.Error()
		}
		return item
	}
	go func() {
		defer close(out)
		switch mode {
		case outNodes:
			for res := range s.runner.SelectHTMLStream(ctx, wr.Query, srcs) {
				item := map[string]any{"index": res.Index}
				if res.Err == nil {
					item["nodes"] = nonNil(res.Nodes)
				}
				out <- finish(item, res.Index, res.Err)
			}
		case outAssign:
			// Tree-free: only the assignment goes on the wire, so skip
			// output-tree construction entirely.
			for res := range s.runner.AssignHTMLStream(ctx, wr.Query, srcs) {
				item := map[string]any{"index": res.Index}
				if res.Err == nil {
					item["assign"] = assignJSON(res.Assignment)
				}
				out <- finish(item, res.Index, res.Err)
			}
		case outXML:
			for res := range s.runner.WrapHTMLStream(ctx, wr.Query, srcs) {
				item := map[string]any{"index": res.Index}
				if res.Err == nil {
					var buf bytes.Buffer
					if err := wrap.WriteXML(&buf, res.Output); err != nil {
						out <- finish(item, res.Index, err)
						continue
					}
					item["xml"] = buf.String()
				}
				out <- finish(item, res.Index, res.Err)
			}
		}
	}()
	return out
}

// ---------------------------------------------------------------------
// Small helpers.

// nonNil keeps empty selections as [] rather than null on the wire.
func nonNil(ids []int) []int {
	if ids == nil {
		return []int{}
	}
	return ids
}

func assignJSON(a mdlog.Assignment) map[string][]int {
	m := make(map[string][]int, len(a))
	for pat, ids := range a {
		m[pat] = nonNil(ids)
	}
	return m
}

// clientErrStatus maps a document-read failure: the client's body was
// unreadable or over the size cap.
func clientErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// evalErrStatus maps an evaluation failure: cancellation came from the
// client; anything else is the wrapper's (i.e. our) problem.
func evalErrStatus(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return 499 // client closed request (nginx convention)
	}
	return http.StatusUnprocessableEntity
}
