package service

// Content-hash document cache. Crawl traffic is massively duplicated:
// many tenants submit byte-identical pages. The daemon hashes the raw
// HTML of every stateless extraction request (SHA-256 over the exact
// bytes) and shares ONE parsed arena per distinct content across
// requests and tenants. Because the per-wrapper and fused QuerySet
// result memos key on tree identity, sharing the tree transparently
// shares the memoized least model too — a duplicate document costs a
// hash plus a map lookup instead of a parse plus an evaluation.
//
// Soundness (DESIGN.md §Fleet): content-equal bytes parse to the
// identical arena, and the paper's semantics are a function of the
// tree alone, so the least model — and therefore every wrapper's
// result — is identical. The cache never serves across generations:
// cached trees are immutable (live document sessions always parse
// their own private arena; PUT/PATCH /documents never touches the
// cache), so a cached entry's generation is forever 0 and a PATCHed
// session can never alias a shared entry.
//
// The cache is LRU-bounded. Eviction forgets the tree from every
// result memo (the fused set's and each wrapper's) before dropping the
// last reference, so an evicted arena is unreachable and collectible —
// the same discipline as closing a session, and idempotent, so a
// concurrent session close or re-eviction can never double-free.

import (
	"crypto/sha256"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	mdlog "mdlog"
)

// DocHash is the content hash of a document's raw bytes — the dedup
// cache key and the consistent-hash routing key of shard mode.
type DocHash [sha256.Size]byte

// HashDoc hashes raw document bytes.
func HashDoc(b []byte) DocHash { return sha256.Sum256(b) }

// ringKey folds a content hash into the 64-bit key space the
// consistent-hash ring places workers in.
func (h DocHash) ringKey() uint64 {
	var k uint64
	for i := 0; i < 8; i++ {
		k = k<<8 | uint64(h[i])
	}
	return k
}

// docEntry is one cached document with its LRU links.
type docEntry struct {
	hash       DocHash
	tree       *mdlog.Tree
	bytes      int64
	prev, next *docEntry // LRU list: next = more recent
}

// docCache is the content-hash → parsed-tree LRU. All methods are
// safe for concurrent use.
type docCache struct {
	mu   sync.Mutex
	m    map[DocHash]*docEntry
	max  int       // entry bound; > 0 (a disabled cache is a nil *docCache)
	head *docEntry // least recent
	tail *docEntry // most recent

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

func newDocCache(max int) *docCache {
	return &docCache{m: map[DocHash]*docEntry{}, max: max}
}

// unlink removes e from the LRU list (caller holds mu).
func (c *docCache) unlink(e *docEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushTail appends e as most recent (caller holds mu).
func (c *docCache) pushTail(e *docEntry) {
	e.prev = c.tail
	if c.tail != nil {
		c.tail.next = e
	}
	c.tail = e
	if c.head == nil {
		c.head = e
	}
}

// get resolves a content hash, marking the entry most-recently-used.
func (c *docCache) get(h DocHash) (*mdlog.Tree, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[h]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.unlink(e)
	c.pushTail(e)
	return e.tree, true
}

// add installs a freshly parsed tree under h and returns any evicted
// trees (the caller forgets them from the result memos). A concurrent
// add of the same hash keeps the first tree — both are parses of the
// same bytes, so either is correct; keeping the installed one
// preserves memo hits already keyed on it.
func (c *docCache) add(h DocHash, t *mdlog.Tree, size int64) (shared *mdlog.Tree, evicted []*mdlog.Tree) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[h]; ok {
		c.unlink(e)
		c.pushTail(e)
		return e.tree, nil
	}
	e := &docEntry{hash: h, tree: t, bytes: size}
	c.m[h] = e
	c.pushTail(e)
	for len(c.m) > c.max {
		old := c.head
		c.unlink(old)
		delete(c.m, old.hash)
		c.evictions.Add(1)
		evicted = append(evicted, old.tree)
	}
	return t, evicted
}

// len reports the current entry count.
func (c *docCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// docCacheStats is the /stats //metrics snapshot.
type docCacheStats struct {
	entries                 int
	max                     int
	hits, misses, evictions int64
}

func (c *docCache) stats() docCacheStats {
	if c == nil {
		return docCacheStats{}
	}
	return docCacheStats{
		entries:   c.len(),
		max:       c.max,
		hits:      c.hits.Load(),
		misses:    c.misses.Load(),
		evictions: c.evictions.Load(),
	}
}

// DocCacheStats is the exported dedup-cache snapshot (the "doc_cache"
// section of /stats), for embedders and benchmarks.
type DocCacheStats struct {
	// Entries / Max are the current and bounding distinct-document
	// counts (all zero when the cache is disabled).
	Entries int
	Max     int
	// Hits / Misses / Evictions are lifetime counters.
	Hits, Misses, Evictions int64
}

// DocCacheStats reports the server's dedup-cache state; the zero value
// means the cache is disabled.
func (s *Server) DocCacheStats() DocCacheStats {
	cs := s.docs.stats()
	return DocCacheStats{
		Entries:   cs.entries,
		Max:       cs.max,
		Hits:      cs.hits,
		Misses:    cs.misses,
		Evictions: cs.evictions,
	}
}

// forgetTree drops every result-memo entry keyed by t — the fused
// set's and each wrapper's — so nothing in the daemon pins the arena.
// Shared by doc-cache eviction and session release; TreeCache.Forget
// is idempotent, so overlapping calls are safe.
func (s *Server) forgetTree(t *mdlog.Tree) {
	s.setMu.Lock()
	set := s.set
	s.setMu.Unlock()
	if set != nil {
		set.Cache().Forget(t)
	}
	for _, wr := range s.reg.Snapshot() {
		if c := wr.Query.Cache(); c != nil {
			c.Forget(t)
		}
	}
}

// misrouteError reports a document whose content hash belongs to a
// different shard — the -shard-of ownership guard tripping on a
// misconfigured front tier or a direct hit on the wrong worker.
type misrouteError struct {
	owner, self, n int
}

func (e *misrouteError) Error() string {
	return fmt.Sprintf("document content-hash maps to shard %d of %d, this worker is shard %d (front tier misrouted or ring mismatch)", e.owner, e.n, e.self)
}

// resolveDoc turns raw document bytes into a parsed tree through the
// dedup cache when it is enabled, after enforcing the shard-ownership
// guard when configured. The only possible error is a misroute.
func (s *Server) resolveDoc(body []byte) (*mdlog.Tree, error) {
	var h DocHash
	if s.shardN > 0 || s.docs != nil {
		h = HashDoc(body)
	}
	if s.shardN > 0 {
		if owner := s.shardRing.Lookup(h.ringKey()); owner != s.shardIdx {
			s.shardMisrouted.Add(1)
			return nil, &misrouteError{owner: owner, self: s.shardIdx, n: s.shardN}
		}
	}
	if s.docs == nil {
		return mdlog.ParseHTML(string(body)), nil
	}
	if t, hit := s.docs.get(h); hit {
		return t, nil
	}
	t := mdlog.ParseHTML(string(body))
	shared, evicted := s.docs.add(h, t, int64(len(body)))
	for _, old := range evicted {
		s.forgetTree(old)
	}
	return shared, nil
}

// readDoc reads and resolves one request-body document, preserving the
// zero-copy streaming parse when neither the dedup cache nor the shard
// guard needs the raw bytes. ok=false means the error response has
// been written.
func (s *Server) readDoc(w http.ResponseWriter, r *http.Request) (*mdlog.Tree, bool) {
	if s.docs == nil && s.shardN == 0 {
		t, err := mdlog.ParseHTMLReader(s.body(w, r))
		if err != nil {
			s.docErrors.Add(1)
			writeError(w, clientErrStatus(err), "reading document: %v", err)
			return nil, false
		}
		return t, true
	}
	body, err := io.ReadAll(s.body(w, r))
	if err != nil {
		s.docErrors.Add(1)
		writeError(w, clientErrStatus(err), "reading document: %v", err)
		return nil, false
	}
	t, err := s.resolveDoc(body)
	if err != nil {
		writeError(w, http.StatusMisdirectedRequest, "%v", err)
		return nil, false
	}
	return t, true
}
