package service

// Content-hash dedup cache tests: sharing, LRU bounds, eviction
// forgetting, and — the soundness property the design note hangs on —
// that live-session mutations can never alias a cached tree.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// docCacheCounters pulls the doc_cache section out of /stats.
func docCacheCounters(t *testing.T, base string) map[string]float64 {
	t.Helper()
	status, stats := doJSON(t, http.MethodGet, base+"/stats", "")
	if status != http.StatusOK {
		t.Fatalf("stats: status %d", status)
	}
	raw, ok := stats["service"].(map[string]any)["doc_cache"].(map[string]any)
	if !ok {
		t.Fatalf("stats has no doc_cache section: %v", stats["service"])
	}
	out := map[string]float64{}
	for k, v := range raw {
		out[k] = v.(float64)
	}
	return out
}

// TestDocCacheDedup: byte-identical documents share one parse and one
// memoized evaluation across requests and endpoints; distinct bytes do
// not.
func TestDocCacheDedup(t *testing.T) {
	_, ts := newTestServer(t, bootConfig())

	for i := 0; i < 3; i++ {
		if status, _ := doJSON(t, http.MethodPost, ts.URL+"/extract/items", page); status != http.StatusOK {
			t.Fatalf("extract %d failed", i)
		}
	}
	// /extractall on the same bytes: same cache entry, same tree.
	if status, _ := doJSON(t, http.MethodPost, ts.URL+"/extractall", page); status != http.StatusOK {
		t.Fatal("extractall failed")
	}
	cs := docCacheCounters(t, ts.URL)
	if cs["entries"] != 1 || cs["misses"] != 1 || cs["hits"] != 3 {
		t.Errorf("after 4 identical docs: %v, want entries=1 misses=1 hits=3", cs)
	}

	// The result memo is shared too: runs 2..4 hit the wrapper cache.
	status, stats := doJSON(t, http.MethodGet, ts.URL+"/stats", "")
	if status != http.StatusOK {
		t.Fatal("stats failed")
	}
	q := stats["wrappers"].(map[string]any)["items"].(map[string]any)["query"].(map[string]any)
	if hits := q["cache_hits"].(float64); hits < 2 {
		t.Errorf("wrapper cache_hits = %v, want >= 2 (dedup shares the memo)", hits)
	}

	// A different document is a miss.
	other := "<html><body><table><tr><td>X</td></tr></table></body></html>"
	if status, _ := doJSON(t, http.MethodPost, ts.URL+"/extract/items", other); status != http.StatusOK {
		t.Fatal("extract other failed")
	}
	cs = docCacheCounters(t, ts.URL)
	if cs["entries"] != 2 || cs["misses"] != 2 {
		t.Errorf("after distinct doc: %v, want entries=2 misses=2", cs)
	}
}

// TestDocCacheLRUEviction: the cache never exceeds its bound, evicts
// least-recently-used first, and an evicted document still extracts
// correctly (re-parsed as a fresh miss).
func TestDocCacheLRUEviction(t *testing.T) {
	cfg := bootConfig()
	cfg.DocCacheEntries = 2
	_, ts := newTestServer(t, cfg)

	docOf := func(i int) string {
		return fmt.Sprintf("<html><body><table><tr><td>doc %d</td></tr></table></body></html>", i)
	}
	for i := 0; i < 4; i++ {
		if status, _ := doJSON(t, http.MethodPost, ts.URL+"/extract/items", docOf(i)); status != http.StatusOK {
			t.Fatalf("extract %d failed", i)
		}
	}
	cs := docCacheCounters(t, ts.URL)
	if cs["entries"] != 2 || cs["max"] != 2 || cs["evictions"] != 2 {
		t.Errorf("after 4 distinct docs at cap 2: %v, want entries=2 evictions=2", cs)
	}
	// doc 3 is most recent: a hit. doc 0 was evicted: a miss, but the
	// extraction is still correct.
	status, body := doJSON(t, http.MethodPost, ts.URL+"/extract/items", docOf(3))
	if status != http.StatusOK {
		t.Fatal(body)
	}
	hitsBefore := docCacheCounters(t, ts.URL)["hits"]
	status, body = doJSON(t, http.MethodPost, ts.URL+"/extract/items", docOf(0))
	if status != http.StatusOK || len(intSlice(t, body["nodes"])) != 1 {
		t.Fatalf("evicted doc re-extract: status %d, body %v", status, body)
	}
	cs = docCacheCounters(t, ts.URL)
	if cs["hits"] != hitsBefore {
		t.Errorf("evicted doc should miss: hits went %v -> %v", hitsBefore, cs["hits"])
	}
}

// TestDocCacheDisabled: DocCacheEntries < 0 turns the cache off — no
// doc_cache stats section, and every request parses privately.
func TestDocCacheDisabled(t *testing.T) {
	cfg := bootConfig()
	cfg.DocCacheEntries = -1
	_, ts := newTestServer(t, cfg)
	for i := 0; i < 2; i++ {
		if status, _ := doJSON(t, http.MethodPost, ts.URL+"/extract/items", page); status != http.StatusOK {
			t.Fatal("extract failed")
		}
	}
	status, stats := doJSON(t, http.MethodGet, ts.URL+"/stats", "")
	if status != http.StatusOK {
		t.Fatal("stats failed")
	}
	if _, ok := stats["service"].(map[string]any)["doc_cache"]; ok {
		t.Error("disabled cache still reports a doc_cache stats section")
	}
}

// TestDocCacheSessionIsolation is the generation-safety property: a
// document session PUT with bytes identical to a cached document must
// parse its own private arena, so PATCHing the session never changes
// what stateless /extract serves for those bytes.
func TestDocCacheSessionIsolation(t *testing.T) {
	_, ts := newTestServer(t, bootConfig())

	status, before := doJSON(t, http.MethodPost, ts.URL+"/extract/items", page)
	if status != http.StatusOK {
		t.Fatal(before)
	}
	wantNodes := fmt.Sprint(intSlice(t, before["nodes"]))

	// Open a session with the SAME bytes and mutate it.
	if status, _ := doJSON(t, http.MethodPut, ts.URL+"/documents/live", page); status != http.StatusCreated {
		t.Fatal("session PUT failed")
	}
	patch, _ := json.Marshal(map[string]any{"ops": []map[string]any{
		{"op": "insert", "parent": 0, "pos": 0, "term": "tr(td,td)"},
	}})
	// The insert needs a real parent node id; find the table via the
	// session's own extraction instead of guessing: patch op against
	// node 0 may fail, which is fine — fall back to a settext on a
	// node the wrapper selects.
	status, res := doJSON(t, http.MethodPatch, ts.URL+"/documents/live", string(patch))
	if status != http.StatusOK {
		// Structural insert at the root was rejected; edit text instead
		// — any successful mutation works for the aliasing check.
		ids := intSlice(t, before["nodes"])
		patch, _ = json.Marshal(map[string]any{"ops": []map[string]any{
			{"op": "settext", "node": ids[0], "text": "MUTATED"},
		}})
		status, res = doJSON(t, http.MethodPatch, ts.URL+"/documents/live", string(patch))
		if status != http.StatusOK {
			t.Fatalf("no mutation applied: status %d, body %v", status, res)
		}
	}
	if gen := res["generation"].(float64); gen == 0 {
		t.Fatal("patch did not advance the session generation")
	}

	// The stateless path must still serve the ORIGINAL document — a
	// cache hit on the immutable shared tree, not the mutated session
	// arena.
	hitsBefore := docCacheCounters(t, ts.URL)["hits"]
	status, after := doJSON(t, http.MethodPost, ts.URL+"/extract/items", page)
	if status != http.StatusOK {
		t.Fatal(after)
	}
	if got := fmt.Sprint(intSlice(t, after["nodes"])); got != wantNodes {
		t.Errorf("session PATCH aliased the dedup cache: extract now %v, want %v", got, wantNodes)
	}
	if hits := docCacheCounters(t, ts.URL)["hits"]; hits != hitsBefore+1 {
		t.Errorf("post-patch extract was not a cache hit (hits %v -> %v)", hitsBefore, hits)
	}

	// Closing the session must not disturb the cached entry either
	// (forget is keyed by tree identity; the session's tree is private).
	if status, _ := doJSON(t, http.MethodDelete, ts.URL+"/documents/live", ""); status != http.StatusNoContent {
		t.Fatal("session DELETE failed")
	}
	status, final := doJSON(t, http.MethodPost, ts.URL+"/extract/items", page)
	if status != http.StatusOK || fmt.Sprint(intSlice(t, final["nodes"])) != wantNodes {
		t.Errorf("extract after session close: status %d, body %v", status, final)
	}
}

// TestDocCacheBatchAll: /batchall routes through the cache — duplicate
// documents inside one envelope cost one parse, and results stay in
// input order with per-document ids.
func TestDocCacheBatchAll(t *testing.T) {
	_, ts := newTestServer(t, bootConfig())
	docs := []map[string]any{
		{"id": "a", "html": page},
		{"id": "b", "html": "<html><body><table><tr><td>B</td></tr></table></body></html>"},
		{"id": "c", "html": page}, // duplicate of a
	}
	b, _ := json.Marshal(map[string]any{"docs": docs})
	status, body := doJSON(t, http.MethodPost, ts.URL+"/batchall", string(b))
	if status != http.StatusOK {
		t.Fatalf("batchall: status %d, body %v", status, body)
	}
	results := body["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("batchall returned %d results, want 3", len(results))
	}
	for i, raw := range results {
		item := raw.(map[string]any)
		if int(item["index"].(float64)) != i {
			t.Errorf("result %d has index %v (order lost)", i, item["index"])
		}
		if item["id"] != docs[i]["id"] {
			t.Errorf("result %d has id %v, want %v", i, item["id"], docs[i]["id"])
		}
		if _, hasErr := item["error"]; hasErr {
			t.Errorf("result %d unexpectedly failed: %v", i, item)
		}
	}
	cs := docCacheCounters(t, ts.URL)
	if cs["entries"] != 2 || cs["misses"] != 2 || cs["hits"] != 1 {
		t.Errorf("batchall cache counters %v, want entries=2 misses=2 hits=1", cs)
	}
}
