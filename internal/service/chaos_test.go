package service

// Chaos suite: stateless dedup-cached extraction, live document
// sessions over the SAME bytes, wrapper re-registration and cache
// eviction churn, all concurrently — run under -race in CI. The
// invariant throughout: stateless extraction over fixed bytes returns
// the fixed answer, no matter what the sessions and the registry are
// doing, and nothing crashes or double-frees on the eviction/close
// paths.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// mustReq builds a request or fails the test.
func mustReq(t *testing.T, method, url, body string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// newFrontServer serves a Front on an httptest server.
func newFrontServer(t *testing.T, f *Front) string {
	t.Helper()
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// chaosDoc builds the i-th distinct document; every document has
// exactly one row so the expected node count is constant.
func chaosDoc(i int) string {
	return fmt.Sprintf("<html><body><table><tr><td>chaos %d</td></tr></table></body></html>", i)
}

// TestChaosSessionsVsDedup hammers the daemon from four directions at
// once over a deliberately tiny dedup cache (constant eviction):
//
//   - extractors POST duplicated documents and check the answer;
//   - session workers PUT/PATCH/DELETE sessions holding the SAME
//     bytes the extractors use (the aliasing trap);
//   - a registrar re-registers the wrapper (version churn, QuerySet
//     rebuilds, memo invalidation);
//   - a reader polls /stats and /metrics (snapshot vs mutation races).
func TestChaosSessionsVsDedup(t *testing.T) {
	cfg := bootConfig()
	cfg.DocCacheEntries = 4 // tiny: every few requests evict
	cfg.MaxInFlight = -1    // the test wants contention, not shedding
	cfg.MaxSessions = -1
	_, ts := newTestServer(t, cfg)

	const (
		goroutines = 4
		iters      = 60
		universe   = 10 // distinct documents; > cache cap so LRU churns
	)
	var wrong atomic.Int64
	var wg sync.WaitGroup

	// Extractors: duplicated stateless traffic.
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				doc := chaosDoc((g + i) % universe)
				status, body := doJSON(t, http.MethodPost, ts.URL+"/extract/items", doc)
				if status == http.StatusNotFound {
					continue // registrar mid-swap; the wrapper will return
				}
				if status != http.StatusOK || len(intSlice(t, body["nodes"])) != 1 {
					wrong.Add(1)
				}
			}
		}(g)
	}

	// Session workers: sessions over the same bytes, mutated, then
	// closed — must never leak into the dedup cache.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("s%d-%d", g, i%3)
				doc := chaosDoc(i % universe)
				if status, _ := doJSON(t, http.MethodPut, ts.URL+"/documents/"+id, doc); status != http.StatusCreated && status != http.StatusOK {
					continue
				}
				patch, _ := json.Marshal(map[string]any{"ops": []map[string]any{
					{"op": "settext", "node": 4, "text": "MUTATED " + strconv.Itoa(i)},
				}})
				doJSON(t, http.MethodPatch, ts.URL+"/documents/"+id, string(patch))
				doJSON(t, http.MethodPost, ts.URL+"/documents/"+id+"/extractall", "")
				if i%2 == 0 {
					doJSON(t, http.MethodDelete, ts.URL+"/documents/"+id, "")
				}
			}
		}(g)
	}

	// Registrar: re-register the same wrapper (bumping its version) and
	// occasionally a second one (QuerySet membership churn).
	wg.Add(1)
	go func() {
		defer wg.Done()
		spec, _ := json.Marshal(map[string]any{"lang": "elog", "source": elogSrc})
		for i := 0; i < iters/2; i++ {
			doJSON(t, http.MethodPut, ts.URL+"/wrappers/items", string(spec))
			if i%4 == 0 {
				doJSON(t, http.MethodPut, ts.URL+"/wrappers/extra", string(spec))
				doJSON(t, http.MethodDelete, ts.URL+"/wrappers/extra", "")
			}
		}
	}()

	// Reader: stats snapshots race registry swaps and cache churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			doJSON(t, http.MethodGet, ts.URL+"/stats", "")
			rawBody(t, http.MethodGet, ts.URL+"/metrics", "")
		}
	}()

	wg.Wait()
	if n := wrong.Load(); n > 0 {
		t.Fatalf("%d extractions returned the wrong answer under chaos", n)
	}

	// Post-chaos sanity: every distinct document still extracts
	// correctly, and the cache is within its bound.
	for i := 0; i < universe; i++ {
		status, body := doJSON(t, http.MethodPost, ts.URL+"/extract/items", chaosDoc(i))
		if status != http.StatusOK || len(intSlice(t, body["nodes"])) != 1 {
			t.Fatalf("post-chaos doc %d: status %d, body %v", i, status, body)
		}
	}
	status, stats := doJSON(t, http.MethodGet, ts.URL+"/stats", "")
	if status != http.StatusOK {
		t.Fatal("post-chaos stats failed")
	}
	cache := stats["service"].(map[string]any)["doc_cache"].(map[string]any)
	if entries := cache["entries"].(float64); entries > 4 {
		t.Errorf("doc cache grew past its bound: %v entries, max 4", entries)
	}
}

// TestChaosEvictionVsSessionClose drives the two forget paths — LRU
// eviction and session release — over overlapping trees as fast as
// possible. TreeCache.Forget is idempotent; this test exists so -race
// and the memo internals prove it under fire.
func TestChaosEvictionVsSessionClose(t *testing.T) {
	cfg := bootConfig()
	cfg.DocCacheEntries = 2
	cfg.MaxInFlight = -1
	cfg.MaxSessions = -1
	_, ts := newTestServer(t, cfg)

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 80; i++ {
				doc := chaosDoc(i % 6)
				// Evictor: roll documents through the 2-entry cache.
				doJSON(t, http.MethodPost, ts.URL+"/extract/items", doc)
				// Session churn on the same content.
				id := fmt.Sprintf("c%d", g)
				doJSON(t, http.MethodPut, ts.URL+"/documents/"+id, doc)
				doJSON(t, http.MethodPost, ts.URL+"/documents/"+id+"/extractall", "")
				doJSON(t, http.MethodDelete, ts.URL+"/documents/"+id, "")
			}
		}(g)
	}
	wg.Wait()

	status, body := doJSON(t, http.MethodPost, ts.URL+"/extract/items", chaosDoc(0))
	if status != http.StatusOK || len(intSlice(t, body["nodes"])) != 1 {
		t.Fatalf("post-churn extract: status %d, body %v", status, body)
	}
}

// TestRetryAfterAlwaysIntegerSeconds sweeps every load-shedding
// surface and asserts the Retry-After header parses as a positive
// integer of seconds — the contract HTTP retry middleware depends on.
func TestRetryAfterAlwaysIntegerSeconds(t *testing.T) {
	assertRetryAfter := func(t *testing.T, where string, h http.Header) {
		t.Helper()
		ra := h.Get("Retry-After")
		if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
			t.Errorf("%s: Retry-After %q is not a positive integer of seconds", where, ra)
		}
	}

	// Admission bound: MaxInFlight 1 + a request stuck in a handler is
	// hard to stage without a slow wrapper, so use session capacity and
	// the front tier — the three 503 paths share unavailable() with
	// admission, and TestAdmissionBound covers that path's status.
	t.Run("session capacity", func(t *testing.T) {
		cfg := bootConfig()
		cfg.MaxSessions = 1
		cfg.SessionIdleMS = 60_000
		_, ts := newTestServer(t, cfg)
		if status, _ := doJSON(t, http.MethodPut, ts.URL+"/documents/a", page); status != http.StatusCreated {
			t.Fatal("first session failed")
		}
		resp, err := http.DefaultClient.Do(mustReq(t, http.MethodPut, ts.URL+"/documents/b", page))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503", resp.StatusCode)
		}
		assertRetryAfter(t, "session capacity", resp.Header)
	})

	t.Run("front no routable worker", func(t *testing.T) {
		f, err := NewFront(FrontConfig{Workers: []string{"http://127.0.0.1:1"}})
		if err != nil {
			t.Fatal(err)
		}
		f.workers[0].healthy.Store(false)
		fts := newFrontServer(t, f)
		resp, err := http.DefaultClient.Do(mustReq(t, http.MethodPost, fts+"/extract/items", page))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503", resp.StatusCode)
		}
		assertRetryAfter(t, "front unroutable", resp.Header)
	})
}
