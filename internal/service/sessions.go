package service

// Live document sessions. A session pins one mdlog.Document server-side
// under a caller-chosen id: PUT uploads the document, PATCH applies
// structural/text edits through the arena mutation API, and
// /documents/{id}/extractall runs every registered wrapper over the
// live document through the incremental maintenance path
// (QuerySet.RunIncremental) — each edit pays for delta-rule
// maintenance instead of a reparse + re-extraction. Sessions are
// capacity-bounded: at the cap, PUT first reclaims the
// least-recently-used session that has sat idle past the configured
// threshold, and sheds the request with 503 + Retry-After when nothing
// is reclaimable.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	mdlog "mdlog"
)

// session is one live document with its usage timestamps.
type session struct {
	ID      string
	doc     *mdlog.Document
	created time.Time

	mu       sync.Mutex
	lastUsed time.Time
}

func (ss *session) touch() {
	ss.mu.Lock()
	ss.lastUsed = time.Now()
	ss.mu.Unlock()
}

func (ss *session) used() time.Time {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.lastUsed
}

// sessionStore is the id → session map with the capacity/LRU policy.
type sessionStore struct {
	mu   sync.Mutex
	m    map[string]*session
	max  int           // ≤ 0: unbounded
	idle time.Duration // LRU reclaim threshold at capacity
}

func newSessionStore(max int, idle time.Duration) *sessionStore {
	return &sessionStore{m: map[string]*session{}, max: max, idle: idle}
}

// put installs ss under its id. Replacing an existing id always
// succeeds (returning the replaced session). A new id at capacity
// reclaims the least-recently-used session iff it has been idle past
// the threshold; otherwise ok=false and the caller sheds the request.
func (st *sessionStore) put(ss *session) (evicted *session, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if old, exists := st.m[ss.ID]; exists {
		st.m[ss.ID] = ss
		return old, true
	}
	if st.max > 0 && len(st.m) >= st.max {
		var lru *session
		for _, cand := range st.m {
			if lru == nil || cand.used().Before(lru.used()) {
				lru = cand
			}
		}
		if lru == nil || time.Since(lru.used()) < st.idle {
			return nil, false
		}
		delete(st.m, lru.ID)
		evicted = lru
	}
	st.m[ss.ID] = ss
	return evicted, true
}

func (st *sessionStore) get(id string) (*session, bool) {
	st.mu.Lock()
	ss, ok := st.m[id]
	st.mu.Unlock()
	if ok {
		ss.touch()
	}
	return ss, ok
}

func (st *sessionStore) remove(id string) (*session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ss, ok := st.m[id]
	if ok {
		delete(st.m, id)
	}
	return ss, ok
}

func (st *sessionStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.m)
}

// snapshot returns the sessions sorted by id.
func (st *sessionStore) snapshot() []*session {
	st.mu.Lock()
	out := make([]*session, 0, len(st.m))
	for _, ss := range st.m {
		out = append(out, ss)
	}
	st.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// releaseSession drops every cache entry keyed by the session's tree
// (the fused set's and each wrapper's), so a closed session's arena is
// unreachable and collectible — nothing in the daemon may pin it.
func (s *Server) releaseSession(ss *session) {
	s.forgetTree(ss.doc.Tree())
}

func (s *Server) sessionOf(w http.ResponseWriter, r *http.Request) (*session, bool) {
	id := r.PathValue("id")
	ss, ok := s.sessions.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no document session %q", id)
		return nil, false
	}
	return ss, true
}

// sessionInfo is the JSON view of one session.
func sessionInfo(ss *session, withStats bool) map[string]any {
	ds := ss.doc.Stats()
	info := map[string]any{
		"id":         ss.ID,
		"generation": ds.Generation,
		"nodes":      ds.Nodes,
		"live":       ds.Live,
		"edits":      ds.Edits,
	}
	if withStats {
		info["created"] = ss.created.UTC().Format(time.RFC3339Nano)
		info["pending_windows"] = ds.PendingWindows
		info["maintained_plans"] = ds.MaintainedPlans
		info["incremental"] = map[string]any{
			"applies":     ds.Inc.Applies,
			"fallbacks":   ds.Inc.Fallbacks,
			"overdeleted": ds.Inc.Overdeleted,
			"rederived":   ds.Inc.Rederived,
		}
	}
	return info
}

// handlePutDocument uploads (or replaces) a live document session.
func (s *Server) handlePutDocument(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := ValidateName(id); err != nil {
		writeError(w, http.StatusBadRequest, "document id: %v", err)
		return
	}
	s.documents.Add(1)
	t, err := mdlog.ParseHTMLReader(s.body(w, r))
	if err != nil {
		s.docErrors.Add(1)
		writeError(w, clientErrStatus(err), "reading document: %v", err)
		return
	}
	now := time.Now()
	ss := &session{ID: id, doc: mdlog.NewDocument(t), created: now, lastUsed: now}
	old, ok := s.sessions.put(ss)
	if !ok {
		s.sessionRejected.Add(1)
		unavailable(w, 1, "session capacity (%d) reached", s.sessions.max)
		return
	}
	status := http.StatusCreated
	if old != nil {
		s.releaseSession(old)
		if old.ID == id {
			status = http.StatusOK
		}
	}
	writeJSON(w, status, sessionInfo(ss, false))
}

func (s *Server) handleListDocuments(w http.ResponseWriter, _ *http.Request) {
	sessions := s.sessions.snapshot()
	infos := make([]map[string]any, len(sessions))
	for i, ss := range sessions {
		infos[i] = sessionInfo(ss, false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"documents": infos})
}

func (s *Server) handleGetDocument(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.sessionOf(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, sessionInfo(ss, true))
}

func (s *Server) handleDeleteDocument(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.sessions.remove(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no document session %q", r.PathValue("id"))
		return
	}
	s.releaseSession(ss)
	w.WriteHeader(http.StatusNoContent)
}

// patchRequest is the JSON envelope of PATCH /documents/{id}.
type patchRequest struct {
	// Ops apply in order; on a failing op the earlier ops remain
	// applied (the response reports how many).
	Ops []patchOp `json:"ops"`
}

// patchOp is one edit operation.
type patchOp struct {
	// Op is "insert", "remove", "settext" or "setattr".
	Op string `json:"op"`
	// Parent/Pos place an inserted subtree (Pos clamps to the child
	// count); Term is the subtree in term syntax, e.g. "tr(td,td)".
	Parent int    `json:"parent,omitempty"`
	Pos    int    `json:"pos,omitempty"`
	Term   string `json:"term,omitempty"`
	// Node is the target of remove/settext/setattr.
	Node int `json:"node,omitempty"`
	// Text is the new text content (settext).
	Text string `json:"text,omitempty"`
	// Key/Value set one attribute (setattr).
	Key   string `json:"key,omitempty"`
	Value string `json:"value,omitempty"`
}

// apply runs one op against the document, returning the inserted
// subtree root id (inserts only, else -1).
func (op patchOp) apply(doc *mdlog.Document) (int, error) {
	switch op.Op {
	case "insert":
		sub, err := mdlog.ParseTree(op.Term)
		if err != nil {
			return -1, fmt.Errorf("term %q: %w", op.Term, err)
		}
		return doc.InsertSubtree(op.Parent, op.Pos, sub.Root)
	case "remove":
		return -1, doc.RemoveSubtree(op.Node)
	case "settext":
		return -1, doc.SetText(op.Node, op.Text)
	case "setattr":
		return -1, doc.SetAttr(op.Node, op.Key, op.Value)
	default:
		return -1, fmt.Errorf("unknown op %q (want insert, remove, settext or setattr)", op.Op)
	}
}

// handlePatchDocument applies an edit script to a live session. Each
// op becomes one delta window for the incremental maintainers; the
// next extraction composes and applies them in one pass.
func (s *Server) handlePatchDocument(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.sessionOf(w, r)
	if !ok {
		return
	}
	var req patchRequest
	dec := json.NewDecoder(s.body(w, r))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, clientErrStatus(err), "invalid patch request: %v", err)
		return
	}
	inserted := []int{}
	for i, op := range req.Ops {
		id, err := op.apply(ss.doc)
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
				"error":   fmt.Sprintf("op %d (%s): %v", i, op.Op, err),
				"applied": i,
			})
			return
		}
		s.sessionEdits.Add(1)
		if id >= 0 {
			inserted = append(inserted, id)
		}
	}
	info := sessionInfo(ss, false)
	info["applied"] = len(req.Ops)
	info["inserted"] = inserted
	writeJSON(w, http.StatusOK, info)
}

// handleSessionExtractAll runs every registered wrapper over the live
// session document in one incrementally-maintained fused pass. Node
// ids in the response are arena ids — stable across this session's
// edits (GET /documents/{id} reports the generation they refer to).
func (s *Server) handleSessionExtractAll(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.sessionOf(w, r)
	if !ok {
		return
	}
	mode, err := setOutput(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	set, err := s.querySet()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "building wrapper set: %v", err)
		return
	}
	base := sessionInfo(ss, false)
	if set == nil {
		base["wrappers"], base["fused"], base["results"] = 0, 0, []any{}
		writeJSON(w, http.StatusOK, base)
		return
	}
	results := set.RunIncremental(r.Context(), ss.doc)
	items := make([]map[string]any, len(results))
	for i, res := range results {
		items[i] = setResultItem(res, mode)
	}
	base["wrappers"], base["fused"], base["results"] = set.Len(), set.FusedLen(), items
	writeJSON(w, http.StatusOK, base)
}
