package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

const spannerSrc = `
	cell(X) :- label_td(Y), child(Y, X), label_#text(X).
	price(X, A) :- cell(X), text(X, S), match(S, /\$(?<amt>[0-9]+\.[0-9][0-9])/, A).
	?- cell.
`

const linkSpannerSrc = `
	link(X, U) :- label_a(X), attr(X, "href", S),
		match(S, /(?<u>https:\/\/[a-z.\/]+)/, U).
`

const spanPage = `<html><body><table>
<tr><td>Espresso</td><td>$2.20</td></tr>
<tr><td>Cappuccino</td><td>$3.10</td></tr>
</table>
<a href="https://example.com/menu">menu</a>
</body></html>`

// putWrapper registers a wrapper spec and fails the test on anything
// but 201.
func putWrapper(t *testing.T, url, name, lang, source string) {
	t.Helper()
	spec, _ := json.Marshal(map[string]any{"lang": lang, "source": source})
	status, info := doJSON(t, http.MethodPut, url+"/wrappers/"+name, string(spec))
	if status != http.StatusCreated {
		t.Fatalf("PUT %s: status %d, body %v", name, status, info)
	}
}

// spanTexts digs the span texts of relation rel out of a decoded
// "spans" field (the wire shape: [{name, vars, rows:[{node, spans}]}]).
func spanTexts(t *testing.T, v any, rel string) []string {
	t.Helper()
	rels, ok := v.([]any)
	if !ok {
		t.Fatalf("spans: want JSON array, got %T (%v)", v, v)
	}
	var out []string
	for _, r := range rels {
		m := r.(map[string]any)
		if m["name"] != rel {
			continue
		}
		for _, row := range m["rows"].([]any) {
			for _, sp := range row.(map[string]any)["spans"].([]any) {
				out = append(out, sp.(map[string]any)["text"].(string))
			}
		}
	}
	return out
}

// TestServiceSpanner is the spanner acceptance path over HTTP: an
// in-text regex-capture wrapper and an attribute-value wrapper both
// return their spans through ?output=spans, non-spanner wrappers
// reject the mode, and the span counters land in /stats and /metrics.
func TestServiceSpanner(t *testing.T) {
	_, ts := newTestServer(t, nil)
	putWrapper(t, ts.URL, "prices", "spanner", spannerSrc)
	putWrapper(t, ts.URL, "links", "spanner", linkSpannerSrc)
	putWrapper(t, ts.URL, "items", "elog", elogSrc)

	// In-text regex capture: the price amounts.
	status, body := doJSON(t, http.MethodPost, ts.URL+"/extract/prices?output=spans", spanPage)
	if status != http.StatusOK {
		t.Fatalf("extract spans: status %d, body %v", status, body)
	}
	if got := spanTexts(t, body["spans"], "price"); len(got) != 2 || got[0] != "2.20" || got[1] != "3.10" {
		t.Fatalf("price spans = %v", got)
	}
	if st := body["stats"].(map[string]any); st["spans"].(float64) != 2 {
		t.Fatalf("run stats %v, want spans=2", st)
	}

	// Attribute-value capture: the href URL (all-matches semantics —
	// the full-value span is among the matches).
	status, body = doJSON(t, http.MethodPost, ts.URL+"/extract/links?output=spans", spanPage)
	if status != http.StatusOK {
		t.Fatalf("extract link spans: status %d, body %v", status, body)
	}
	links := spanTexts(t, body["spans"], "link")
	full := false
	for _, u := range links {
		if u == "https://example.com/menu" {
			full = true
		}
	}
	if !full {
		t.Fatalf("link spans %v lack the full href value", links)
	}

	// A spanner wrapper still answers the node-output modes.
	status, body = doJSON(t, http.MethodPost, ts.URL+"/extract/prices", spanPage)
	if status != http.StatusOK || len(intSlice(t, body["nodes"])) != 4 {
		t.Fatalf("node output: status %d, body %v", status, body)
	}

	// output=spans against a non-spanner wrapper is a client error.
	status, body = doJSON(t, http.MethodPost, ts.URL+"/extract/items?output=spans", spanPage)
	if status != http.StatusBadRequest {
		t.Fatalf("non-spanner spans: status %d, body %v", status, body)
	}

	// /stats and /metrics carry the span counters.
	status, stats := doJSON(t, http.MethodGet, ts.URL+"/stats", "")
	if status != http.StatusOK {
		t.Fatalf("stats: status %d", status)
	}
	prices := stats["wrappers"].(map[string]any)["prices"].(map[string]any)
	if q := prices["query"].(map[string]any); q["spans"].(float64) < 2 {
		t.Fatalf("wrapper stats %v, want spans >= 2", q)
	}
	if q := stats["totals"].(map[string]any); q["spans"].(float64) < 2 {
		t.Fatalf("totals %v, want spans >= 2", q)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(raw)
	if !strings.Contains(metrics, `mdlogd_wrapper_spans_total{wrapper="prices"} 2`) {
		t.Errorf("metrics lack the per-wrapper span counter")
	}
	if !strings.Contains(metrics, "mdlogd_spans_total") {
		t.Errorf("metrics lack mdlogd_spans_total")
	}
}

// TestServiceSpannerBatchAndAll covers the fan-out surfaces: /batch
// with ?output=spans, and the fused /extractall + /batchall where
// spanner members report spans and other members report empty ones.
func TestServiceSpannerBatchAndAll(t *testing.T) {
	_, ts := newTestServer(t, nil)
	putWrapper(t, ts.URL, "prices", "spanner", spannerSrc)
	putWrapper(t, ts.URL, "items", "elog", elogSrc)

	batch, _ := json.Marshal(map[string]any{"docs": []map[string]any{
		{"id": "a", "html": spanPage},
		{"id": "b", "html": `<html><body><table><tr><td>$9.99</td></tr></table></body></html>`},
	}})

	status, body := doJSON(t, http.MethodPost, ts.URL+"/batch/prices?output=spans", string(batch))
	if status != http.StatusOK {
		t.Fatalf("batch spans: status %d, body %v", status, body)
	}
	results := body["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("batch results %v", results)
	}
	first := results[0].(map[string]any)
	if got := spanTexts(t, first["spans"], "price"); len(got) != 2 || got[0] != "2.20" {
		t.Fatalf("batch doc a spans = %v", got)
	}
	second := results[1].(map[string]any)
	if got := spanTexts(t, second["spans"], "price"); len(got) != 1 || got[0] != "9.99" {
		t.Fatalf("batch doc b spans = %v", got)
	}

	// Fused one-document pass: the spanner member carries spans, the
	// elog member an empty list.
	status, body = doJSON(t, http.MethodPost, ts.URL+"/extractall?output=spans", spanPage)
	if status != http.StatusOK {
		t.Fatalf("extractall spans: status %d, body %v", status, body)
	}
	byName := map[string]map[string]any{}
	for _, it := range body["results"].([]any) {
		m := it.(map[string]any)
		byName[m["wrapper"].(string)] = m
	}
	if got := spanTexts(t, byName["prices"]["spans"], "price"); len(got) != 2 {
		t.Fatalf("extractall spanner spans = %v", got)
	}
	if rels, ok := byName["items"]["spans"].([]any); !ok || len(rels) != 0 {
		t.Fatalf("extractall elog member spans = %v, want []", byName["items"]["spans"])
	}

	// Batch form of the fused pass.
	status, body = doJSON(t, http.MethodPost, ts.URL+"/batchall?output=spans", string(batch))
	if status != http.StatusOK {
		t.Fatalf("batchall spans: status %d, body %v", status, body)
	}
	docs := body["results"].([]any)
	if len(docs) != 2 {
		t.Fatalf("batchall results %v", docs)
	}
	docB := docs[1].(map[string]any)
	found := false
	for _, it := range docB["results"].([]any) {
		m := it.(map[string]any)
		if m["wrapper"] == "prices" {
			if got := spanTexts(t, m["spans"], "price"); len(got) == 1 && got[0] == "9.99" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("batchall doc b missing the 9.99 span: %v", docB)
	}

	// xml stays per-wrapper-only under the fused endpoints.
	status, _ = doJSON(t, http.MethodPost, ts.URL+"/extractall?output=xml", spanPage)
	if status != http.StatusBadRequest {
		t.Fatalf("extractall xml: status %d", status)
	}
}

// TestServiceSpannerSession runs the fused spans output over a live
// document session and checks an edit shows up in the next pass.
func TestServiceSpannerSession(t *testing.T) {
	_, ts := newTestServer(t, nil)
	putWrapper(t, ts.URL, "prices", "spanner", spannerSrc)

	status, body := doJSON(t, http.MethodPut, ts.URL+"/documents/menu", spanPage)
	if status != http.StatusCreated {
		t.Fatalf("PUT document: status %d, body %v", status, body)
	}
	status, body = doJSON(t, http.MethodPost, ts.URL+"/documents/menu/extractall?output=spans", "")
	if status != http.StatusOK {
		t.Fatalf("session extractall: status %d, body %v", status, body)
	}
	res := body["results"].([]any)[0].(map[string]any)
	if got := spanTexts(t, res["spans"], "price"); len(got) != 2 {
		t.Fatalf("session spans = %v", got)
	}
	node := int(res["spans"].([]any)[0].(map[string]any)["rows"].([]any)[0].(map[string]any)["node"].(float64))

	ops, _ := json.Marshal(map[string]any{"ops": []map[string]any{
		{"op": "settext", "node": node, "text": "$4.40"},
	}})
	status, body = doJSON(t, http.MethodPatch, ts.URL+"/documents/menu", string(ops))
	if status != http.StatusOK {
		t.Fatalf("PATCH: status %d, body %v", status, body)
	}
	status, body = doJSON(t, http.MethodPost, ts.URL+"/documents/menu/extractall?output=spans", "")
	if status != http.StatusOK {
		t.Fatalf("session extractall after edit: status %d, body %v", status, body)
	}
	res = body["results"].([]any)[0].(map[string]any)
	got := spanTexts(t, res["spans"], "price")
	if len(got) != 2 || got[0] != "4.40" {
		t.Fatalf("session spans after edit = %v", got)
	}
}
