// Package service is the wrapper-serving layer of mdlog: a long-running
// HTTP daemon (cmd/mdlogd) that holds a concurrent registry of named
// compiled wrappers — any of the seven query languages, span-extracting
// spanners included — and serves extraction over them.
//
// Endpoints (all request/response bodies JSON unless noted):
//
//	PUT    /wrappers/{name}   compile and (re)register a wrapper
//	GET    /wrappers          list registered wrappers
//	GET    /wrappers/{name}   one wrapper, including its source
//	DELETE /wrappers/{name}   unregister
//	POST   /extract/{name}    body = raw HTML;
//	                          ?output=nodes|assign|xml|spans
//	POST   /batch/{name}      body = {"docs":[{"id","html"},...]};
//	                          ?output=nodes|assign|xml|spans
//	                          &format=json|ndjson
//	POST   /extractall        body = raw HTML; every registered wrapper
//	                          in one fused pass;
//	                          ?output=nodes|assign|spans
//	POST   /batchall          batch form of /extractall (one parse per
//	                          document, all wrappers, fused);
//	                          ?output=nodes|assign|spans
//	                          &format=json|ndjson
//	PUT    /documents/{id}    body = raw HTML; open (or replace) a live
//	                          document session
//	GET    /documents         list live document sessions
//	GET    /documents/{id}    session state + incremental counters
//	PATCH  /documents/{id}    body = {"ops":[...]}; edit the live
//	                          document (insert/remove/settext/setattr)
//	DELETE /documents/{id}    close the session, releasing its state
//	POST   /documents/{id}/extractall
//	                          every registered wrapper over the live
//	                          document, incrementally maintained;
//	                          ?output=nodes|assign
//	GET    /stats             per-wrapper query + cache stats, totals
//	GET    /metrics           the same as Prometheus text format
//	GET    /healthz           liveness
//
// A document POSTed to /extract streams through mdlog.ParseHTMLReader
// directly into the arena pipeline; /batch fans its documents across
// the mdlog.Runner worker pool with per-document error isolation.
// Admission is bounded (Config.MaxInFlight) and every handler honors
// request-context cancellation; Serve shuts down gracefully when its
// context is canceled.
package service

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	mdlog "mdlog"
)

// Server is the wrapper-serving daemon: a registry plus HTTP handlers,
// a bounded-admission gate, and service-level counters. Create with
// New; all methods are safe for concurrent use.
type Server struct {
	reg     *Registry
	runner  mdlog.Runner
	maxBody int64
	grace   time.Duration
	sem     chan struct{}
	maxIn   int
	mux     *http.ServeMux
	started time.Time
	// defaultOpt is the daemon-wide optimization level applied to
	// wrapper specs that leave theirs empty ("" means library default,
	// i.e. full optimization).
	defaultOpt string
	// defaultEngine is the daemon-wide evaluation engine applied to
	// wrapper specs that leave theirs empty ("" means library default,
	// i.e. the linear engine).
	defaultEngine string

	// Persistence (nil without a data dir): the registry snapshot on
	// disk, rewritten after every successful wrapper mutation and
	// re-read by Reload on SIGHUP.
	store       *Store
	storeSaves  atomic.Int64
	storeErrors atomic.Int64
	reloads     atomic.Int64

	// Content-hash document dedup cache (nil when disabled).
	docs *docCache

	// Shard-ownership guard (-shard-of i/n): shardN == 0 means off.
	shardRing      *Ring
	shardIdx       int
	shardN         int
	shardMisrouted atomic.Int64

	inFlight  atomic.Int64
	rejected  atomic.Int64
	requests  [endpoints]atomic.Int64
	documents atomic.Int64
	docErrors atomic.Int64

	// Live document sessions (PUT/PATCH/DELETE /documents/{id}).
	sessions        *sessionStore
	sessionRejected atomic.Int64
	sessionEdits    atomic.Int64

	// The fused QuerySet over every registered wrapper, serving
	// /extractall and /batchall. Rebuilt lazily whenever the registry
	// generation moves — registrations are rare, extractions are not.
	setMu  sync.Mutex
	setGen int64
	set    *mdlog.QuerySet
}

// endpoint indexes the per-endpoint request counters.
type endpoint int

const (
	epExtract endpoint = iota
	epBatch
	epExtractAll
	epBatchAll
	epWrappers
	epDocuments
	epStats
	epMetrics
	endpoints
)

func (e endpoint) String() string {
	switch e {
	case epExtract:
		return "extract"
	case epBatch:
		return "batch"
	case epExtractAll:
		return "extractall"
	case epBatchAll:
		return "batchall"
	case epWrappers:
		return "wrappers"
	case epDocuments:
		return "documents"
	case epStats:
		return "stats"
	case epMetrics:
		return "metrics"
	}
	return "other"
}

// Connection-level timeouts for Serve (see the http.Server fields in
// Serve for why each exists). Not config knobs: they bound protocol
// abuse, not workload shape.
const (
	readHeaderTimeout = 10 * time.Second
	readTimeout       = 60 * time.Second
	idleTimeout       = 120 * time.Second
)

// New builds a Server from cfg (nil means all defaults), compiling and
// registering the configured wrappers. A wrapper that fails to compile
// fails the boot — a daemon that silently drops wrappers would serve
// 404s where traffic expects extractions.
func New(cfg *Config) (*Server, error) {
	if cfg == nil {
		cfg = &Config{}
	}
	s := &Server{
		reg:     NewRegistry(),
		runner:  mdlog.Runner{Workers: cfg.Workers},
		maxBody: cfg.MaxBodyBytes,
		grace:   time.Duration(cfg.ShutdownGraceMS) * time.Millisecond,
		maxIn:   cfg.MaxInFlight,
		started: time.Now(),
	}
	if s.maxBody == 0 {
		s.maxBody = DefaultMaxBodyBytes
	}
	if s.grace == 0 {
		s.grace = DefaultShutdownGraceMS * time.Millisecond
	}
	if s.maxIn == 0 {
		s.maxIn = DefaultMaxInFlight
	}
	if s.maxIn > 0 {
		s.sem = make(chan struct{}, s.maxIn)
	}
	maxSessions := cfg.MaxSessions
	if maxSessions == 0 {
		maxSessions = DefaultMaxSessions
	}
	sessionIdle := time.Duration(cfg.SessionIdleMS) * time.Millisecond
	if sessionIdle == 0 {
		sessionIdle = DefaultSessionIdleMS * time.Millisecond
	}
	s.sessions = newSessionStore(maxSessions, sessionIdle)
	if cfg.Opt != "" {
		if _, err := mdlog.ParseOptLevel(cfg.Opt); err != nil {
			return nil, err
		}
		s.defaultOpt = cfg.Opt
	}
	if cfg.Engine != "" {
		if _, err := mdlog.ParseEngineFlag(cfg.Engine); err != nil {
			return nil, err
		}
		s.defaultEngine = cfg.Engine
	}
	if entries := cfg.DocCacheEntries; entries >= 0 {
		if entries == 0 {
			entries = DefaultDocCacheEntries
		}
		s.docs = newDocCache(entries)
	}
	if cfg.ShardOf != "" {
		idx, n, err := ParseShardOf(cfg.ShardOf)
		if err != nil {
			return nil, err
		}
		s.shardIdx, s.shardN = idx, n
		s.shardRing = NewRing(n, cfg.RingReplicas)
	}
	// Persistence: the store snapshot is the daemon's runtime state and
	// loads first; config wrappers only seed names the store does not
	// already hold. A corrupt snapshot fails the boot (see Store.Load).
	if cfg.DataDir != "" {
		st, err := OpenStore(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		stored, err := st.Load()
		if err != nil {
			return nil, err
		}
		for _, sw := range stored {
			q, err := s.withDefaults(sw.Spec).Compile()
			if err != nil {
				return nil, fmt.Errorf("service: stored wrapper %q: %w", sw.Name, err)
			}
			s.reg.Install(&Wrapper{Name: sw.Name, Spec: sw.Spec, Query: q, Version: sw.Version, Registered: sw.Registered})
		}
		s.store = st
	}
	for _, cw := range cfg.Wrappers {
		// LoadConfig inlines File into Source; a File surviving to here
		// means the caller skipped that resolution, and an entry with
		// neither would "compile" an empty program and serve 422s.
		if cw.File != "" {
			return nil, fmt.Errorf("service: wrapper %q has an unresolved file reference %q (use LoadConfig)", cw.Name, cw.File)
		}
		if cw.Source == "" {
			return nil, fmt.Errorf("service: wrapper %q has neither source nor file", cw.Name)
		}
		if _, ok := s.reg.Get(cw.Name); ok && s.store != nil {
			continue // the persisted runtime entry wins over the boot seed
		}
		if _, _, err := s.reg.Register(cw.Name, s.withDefaults(cw.WrapperSpec)); err != nil {
			return nil, err
		}
	}
	if s.store != nil {
		// Write the merged boot state back, so the snapshot exists from
		// the first boot on and restart round-trips even before the
		// first HTTP mutation.
		if err := s.persist(); err != nil {
			return nil, err
		}
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// withDefaults fills spec fields the daemon configures globally (the
// optimization level and the evaluation engine) when the spec leaves
// them empty.
func (s *Server) withDefaults(spec WrapperSpec) WrapperSpec {
	if spec.Opt == "" {
		spec.Opt = s.defaultOpt
	}
	if spec.Engine == "" {
		spec.Engine = s.defaultEngine
	}
	return spec
}

// Registry exposes the server's wrapper registry (e.g. for boot-time
// checks or tests).
func (s *Server) Registry() *Registry { return s.reg }

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.counted(epStats, s.handleStats))
	s.mux.HandleFunc("GET /metrics", s.counted(epMetrics, s.handleMetrics))
	s.mux.HandleFunc("GET /wrappers", s.counted(epWrappers, s.handleListWrappers))
	s.mux.HandleFunc("PUT /wrappers/{name}", s.counted(epWrappers, s.handlePutWrapper))
	s.mux.HandleFunc("GET /wrappers/{name}", s.counted(epWrappers, s.handleGetWrapper))
	s.mux.HandleFunc("DELETE /wrappers/{name}", s.counted(epWrappers, s.handleDeleteWrapper))
	s.mux.HandleFunc("POST /extract/{name}", s.admitted(epExtract, s.handleExtract))
	s.mux.HandleFunc("POST /batch/{name}", s.admitted(epBatch, s.handleBatch))
	s.mux.HandleFunc("POST /extractall", s.admitted(epExtractAll, s.handleExtractAll))
	s.mux.HandleFunc("POST /batchall", s.admitted(epBatchAll, s.handleBatchAll))
	s.mux.HandleFunc("PUT /documents/{id}", s.admitted(epDocuments, s.handlePutDocument))
	s.mux.HandleFunc("GET /documents", s.counted(epDocuments, s.handleListDocuments))
	s.mux.HandleFunc("GET /documents/{id}", s.counted(epDocuments, s.handleGetDocument))
	s.mux.HandleFunc("PATCH /documents/{id}", s.admitted(epDocuments, s.handlePatchDocument))
	s.mux.HandleFunc("DELETE /documents/{id}", s.counted(epDocuments, s.handleDeleteDocument))
	s.mux.HandleFunc("POST /documents/{id}/extractall", s.admitted(epExtractAll, s.handleSessionExtractAll))
}

// querySet returns the fused QuerySet over the current registry
// contents, rebuilding it only when the registry has changed since the
// last call. Returns a nil set when no wrappers are registered.
func (s *Server) querySet() (*mdlog.QuerySet, error) {
	gen := s.reg.Gen()
	s.setMu.Lock()
	defer s.setMu.Unlock()
	if s.set != nil && s.setGen == gen {
		return s.set, nil
	}
	ws := s.reg.Snapshot()
	if len(ws) == 0 {
		s.set, s.setGen = nil, gen
		return nil, nil
	}
	members := make([]mdlog.NamedQuery, len(ws))
	for i, w := range ws {
		members[i] = mdlog.NamedQuery{Name: w.Name, Query: w.Query}
	}
	set, err := mdlog.NewNamedQuerySet(members...)
	if err != nil {
		return nil, err
	}
	s.set, s.setGen = set, gen
	return set, nil
}

// Handler returns the daemon's HTTP handler (e.g. for httptest or an
// embedding server).
func (s *Server) Handler() http.Handler { return s.mux }

// counted wraps a handler with its endpoint request counter.
func (s *Server) counted(ep endpoint, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests[ep].Add(1)
		h(w, r)
	}
}

// admitted is counted plus the bounded-admission gate: when MaxInFlight
// extraction requests are already running, the request is rejected
// immediately with 503 + Retry-After rather than queued — under
// overload the daemon sheds load instead of accumulating latency.
func (s *Server) admitted(ep endpoint, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests[ep].Add(1)
		if s.sem != nil {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				s.rejected.Add(1)
				unavailable(w, 1, "server at capacity")
				return
			}
		}
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		h(w, r)
	}
}

// Serve accepts connections on ln until ctx is canceled, then shuts
// down gracefully: in-flight requests get the configured grace window
// to finish, after which their request contexts are canceled so
// lingering fan-outs stop promptly. It returns nil on a clean
// shutdown.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	return serveHandler(ctx, ln, s.Handler(), s.grace)
}

// serveHandler is the shared serve loop of the worker daemon and the
// shard-mode front tier: accept until ctx cancels, then drain within
// grace before canceling lingering request contexts.
func serveHandler(ctx context.Context, ln net.Listener, h http.Handler, grace time.Duration) error {
	reqCtx, cancelReqs := context.WithCancel(context.Background())
	defer cancelReqs()
	hs := &http.Server{
		Handler:     h,
		BaseContext: func(net.Listener) context.Context { return reqCtx },
		// Slow-client bounds: admission slots are held while a request
		// body streams in, so a client must present headers and finish
		// its body within fixed windows or its slot is reclaimed —
		// otherwise a trickle of half-open POSTs would pin MaxInFlight
		// and defeat the load shedding. No WriteTimeout: NDJSON batch
		// responses legitimately stream for a long time.
		ReadHeaderTimeout: readHeaderTimeout,
		ReadTimeout:       readTimeout,
		IdleTimeout:       idleTimeout,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err // listener failure; never ErrServerClosed here
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := hs.Shutdown(sctx)
	cancelReqs()
	if serr := <-serveErr; serr != http.ErrServerClosed {
		return serr
	}
	return err
}

// ListenAndServe is Serve on a fresh TCP listener bound to addr
// (DefaultAddr if empty).
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	if addr == "" {
		addr = DefaultAddr
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}
