package service

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// handleMetrics renders the same snapshot as /stats in the Prometheus
// text exposition format (version 0.0.4) — counters for traffic and
// per-wrapper work, gauges for current state — so a scraper needs no
// custom exporter in front of the daemon.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	stats, total := s.snapshot()

	gauge := func(name, help string, v string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, v)
	}
	counter := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	seconds := func(d time.Duration) string {
		return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
	}

	gauge("mdlogd_uptime_seconds", "Seconds since the server started.",
		seconds(time.Since(s.started)))
	gauge("mdlogd_wrappers", "Registered wrappers.",
		strconv.Itoa(s.reg.Len()))
	gauge("mdlogd_in_flight", "Extraction requests currently admitted.",
		strconv.FormatInt(s.inFlight.Load(), 10))
	gauge("mdlogd_max_in_flight", "Admission bound (<= 0: unbounded).",
		strconv.Itoa(s.maxIn))

	counter("mdlogd_requests_total", "HTTP requests by endpoint.")
	for ep := endpoint(0); ep < endpoints; ep++ {
		fmt.Fprintf(&b, "mdlogd_requests_total{endpoint=%q} %d\n", ep.String(), s.requests[ep].Load())
	}
	counter("mdlogd_rejected_total", "Requests shed by the admission bound.")
	fmt.Fprintf(&b, "mdlogd_rejected_total %d\n", s.rejected.Load())
	counter("mdlogd_documents_total", "Documents accepted for extraction.")
	fmt.Fprintf(&b, "mdlogd_documents_total %d\n", s.documents.Load())
	counter("mdlogd_document_errors_total", "Documents that failed to parse or evaluate.")
	fmt.Fprintf(&b, "mdlogd_document_errors_total %d\n", s.docErrors.Load())

	if s.store != nil {
		counter("mdlogd_store_saves_total", "Registry snapshots written to the persistent store.")
		fmt.Fprintf(&b, "mdlogd_store_saves_total %d\n", s.storeSaves.Load())
		counter("mdlogd_store_errors_total", "Registry snapshot writes that failed.")
		fmt.Fprintf(&b, "mdlogd_store_errors_total %d\n", s.storeErrors.Load())
		counter("mdlogd_store_reloads_total", "Registry reloads from the store (SIGHUP).")
		fmt.Fprintf(&b, "mdlogd_store_reloads_total %d\n", s.reloads.Load())
	}
	if s.docs != nil {
		cs := s.docs.stats()
		gauge("mdlogd_doc_cache_entries", "Distinct documents in the content-hash dedup cache.",
			strconv.Itoa(cs.entries))
		gauge("mdlogd_doc_cache_max_entries", "Dedup cache capacity.",
			strconv.Itoa(cs.max))
		counter("mdlogd_doc_cache_hits_total", "Documents served from the dedup cache.")
		fmt.Fprintf(&b, "mdlogd_doc_cache_hits_total %d\n", cs.hits)
		counter("mdlogd_doc_cache_misses_total", "Documents parsed fresh into the dedup cache.")
		fmt.Fprintf(&b, "mdlogd_doc_cache_misses_total %d\n", cs.misses)
		counter("mdlogd_doc_cache_evictions_total", "Documents evicted from the dedup cache.")
		fmt.Fprintf(&b, "mdlogd_doc_cache_evictions_total %d\n", cs.evictions)
	}
	if s.shardN > 0 {
		gauge("mdlogd_shard_index", "This worker's shard index.",
			strconv.Itoa(s.shardIdx))
		gauge("mdlogd_shard_count", "Workers in the shard fleet.",
			strconv.Itoa(s.shardN))
		counter("mdlogd_shard_misrouted_total", "Documents rejected by the shard-ownership guard (421).")
		fmt.Fprintf(&b, "mdlogd_shard_misrouted_total %d\n", s.shardMisrouted.Load())
	}

	sessions := s.sessionsJSON()
	gauge("mdlogd_sessions", "Live document sessions.",
		strconv.Itoa(sessions["count"].(int)))
	gauge("mdlogd_max_sessions", "Session capacity (<= 0: unbounded).",
		strconv.Itoa(s.sessions.max))
	counter("mdlogd_session_rejected_total", "Session opens shed at capacity.")
	fmt.Fprintf(&b, "mdlogd_session_rejected_total %d\n", s.sessionRejected.Load())
	counter("mdlogd_session_edits_total", "Edit operations applied to live sessions.")
	fmt.Fprintf(&b, "mdlogd_session_edits_total %d\n", s.sessionEdits.Load())
	counter("mdlogd_session_inc_applies_total", "Delta windows applied by incremental maintainers (live sessions).")
	fmt.Fprintf(&b, "mdlogd_session_inc_applies_total %d\n", sessions["inc_applies"].(int))
	counter("mdlogd_session_inc_fallback_total", "Delta windows handled by full re-evaluation (live sessions).")
	fmt.Fprintf(&b, "mdlogd_session_inc_fallback_total %d\n", sessions["inc_fallback"].(int))

	fmt.Fprintf(&b, "# HELP mdlogd_wrapper_engine Plan engine by wrapper (value is always 1; the engine is the label).\n# TYPE mdlogd_wrapper_engine gauge\n")
	for _, st := range stats {
		fmt.Fprintf(&b, "mdlogd_wrapper_engine{wrapper=%q,engine=%q} 1\n", st.wr.Name, st.wr.Query.EngineName())
	}
	fmt.Fprintf(&b, "# HELP mdlogd_wrapper_version Installs under this wrapper name (survives restarts with a data dir).\n# TYPE mdlogd_wrapper_version gauge\n")
	for _, st := range stats {
		fmt.Fprintf(&b, "mdlogd_wrapper_version{wrapper=%q} %d\n", st.wr.Name, st.wr.Version)
	}
	counter("mdlogd_wrapper_runs_total", "Query runs by wrapper.")
	for _, st := range stats {
		fmt.Fprintf(&b, "mdlogd_wrapper_runs_total{wrapper=%q} %d\n", st.wr.Name, st.query.Runs)
	}
	counter("mdlogd_wrapper_fused_runs_total", "Runs served by a fused all-wrapper pass, by wrapper.")
	for _, st := range stats {
		fmt.Fprintf(&b, "mdlogd_wrapper_fused_runs_total{wrapper=%q} %d\n", st.wr.Name, st.query.FusedRuns)
	}
	counter("mdlogd_wrapper_subsumed_runs_total", "Runs answered purely by projection from an equivalent wrapper's relations, by wrapper.")
	for _, st := range stats {
		fmt.Fprintf(&b, "mdlogd_wrapper_subsumed_runs_total{wrapper=%q} %d\n", st.wr.Name, st.query.SubsumedRuns)
	}
	counter("mdlogd_wrapper_facts_total", "Result facts by wrapper.")
	for _, st := range stats {
		fmt.Fprintf(&b, "mdlogd_wrapper_facts_total{wrapper=%q} %d\n", st.wr.Name, st.query.Facts)
	}
	counter("mdlogd_wrapper_spans_total", "Span tuples extracted by wrapper (spanner wrappers only).")
	for _, st := range stats {
		fmt.Fprintf(&b, "mdlogd_wrapper_spans_total{wrapper=%q} %d\n", st.wr.Name, st.query.Spans)
	}
	counter("mdlogd_wrapper_cache_hits_total", "Runs served from the result memo, by wrapper.")
	for _, st := range stats {
		fmt.Fprintf(&b, "mdlogd_wrapper_cache_hits_total{wrapper=%q} %d\n", st.wr.Name, st.query.CacheHits)
	}
	counter("mdlogd_wrapper_eval_seconds_total", "Engine time by wrapper.")
	for _, st := range stats {
		fmt.Fprintf(&b, "mdlogd_wrapper_eval_seconds_total{wrapper=%q} %s\n", st.wr.Name, seconds(st.query.Eval))
	}
	counter("mdlogd_wrapper_materialize_seconds_total", "Materialization time by wrapper.")
	for _, st := range stats {
		fmt.Fprintf(&b, "mdlogd_wrapper_materialize_seconds_total{wrapper=%q} %s\n", st.wr.Name, seconds(st.query.Materialize))
	}
	fmt.Fprintf(&b, "# HELP mdlogd_wrapper_cache_trees Documents with cached state, by wrapper.\n# TYPE mdlogd_wrapper_cache_trees gauge\n")
	for _, st := range stats {
		if st.cached {
			fmt.Fprintf(&b, "mdlogd_wrapper_cache_trees{wrapper=%q} %d\n", st.wr.Name, st.cache.Trees)
		}
	}
	fmt.Fprintf(&b, "# HELP mdlogd_wrapper_cache_results Memoized (query, tree) results, by wrapper.\n# TYPE mdlogd_wrapper_cache_results gauge\n")
	for _, st := range stats {
		if st.cached {
			fmt.Fprintf(&b, "mdlogd_wrapper_cache_results{wrapper=%q} %d\n", st.wr.Name, st.cache.Results)
		}
	}
	fmt.Fprintf(&b, "# HELP mdlogd_wrapper_rules_before Datalog rules before compile-time optimization, by wrapper.\n# TYPE mdlogd_wrapper_rules_before gauge\n")
	for _, st := range stats {
		if st.opt.RulesBefore > 0 {
			fmt.Fprintf(&b, "mdlogd_wrapper_rules_before{wrapper=%q} %d\n", st.wr.Name, st.opt.RulesBefore)
		}
	}
	fmt.Fprintf(&b, "# HELP mdlogd_wrapper_rules_after Datalog rules in the prepared plan, by wrapper.\n# TYPE mdlogd_wrapper_rules_after gauge\n")
	for _, st := range stats {
		if st.opt.RulesBefore > 0 {
			fmt.Fprintf(&b, "mdlogd_wrapper_rules_after{wrapper=%q} %d\n", st.wr.Name, st.opt.RulesAfter)
		}
	}

	if plans, fuseRep, ok := s.subsumePlans(); ok {
		fmt.Fprintf(&b, "# HELP mdlogd_wrapper_subsume_class Equivalence class of the wrapper in the fused all-wrapper set (wrappers sharing a class share answers).\n# TYPE mdlogd_wrapper_subsume_class gauge\n")
		for _, st := range stats {
			if p, have := plans[st.wr.Name]; have && p.Fused {
				fmt.Fprintf(&b, "mdlogd_wrapper_subsume_class{wrapper=%q} %d\n", st.wr.Name, p.Class)
			}
		}
		fmt.Fprintf(&b, "# HELP mdlogd_wrapper_subsumed Whether the wrapper is served by projection from an equivalent wrapper (1) or evaluates its own rules (0).\n# TYPE mdlogd_wrapper_subsumed gauge\n")
		for _, st := range stats {
			if p, have := plans[st.wr.Name]; have && p.Fused {
				v := 0
				if p.Subsumed {
					v = 1
				}
				fmt.Fprintf(&b, "mdlogd_wrapper_subsumed{wrapper=%q} %d\n", st.wr.Name, v)
			}
		}
		gauge("mdlogd_fused_rules", "Rules in the fused all-wrapper program after dedup, CSE and subsumption.",
			strconv.Itoa(fuseRep.RulesOut))
		gauge("mdlogd_fused_rules_in", "Total member rules entering registry-wide fusion.",
			strconv.Itoa(fuseRep.RulesIn))
		gauge("mdlogd_cse_preds", "Shared auxiliary predicates extracted by common-subexpression elimination.",
			strconv.Itoa(fuseRep.CSEPreds))
		gauge("mdlogd_subsume_checked", "Visible predicates fingerprinted by the containment checker at the last registry compile.",
			strconv.Itoa(fuseRep.SubsumeChecked))
		gauge("mdlogd_subsume_merged", "Visible predicates proven equivalent and merged at the last registry compile.",
			strconv.Itoa(fuseRep.SubsumedPreds))
		gauge("mdlogd_subsume_unknown", "Visible predicates the containment checker declined (fall back to evaluation).",
			strconv.Itoa(fuseRep.SubsumeUnknown))
		gauge("mdlogd_subsume_check_seconds", "Containment-checker time at the last registry compile.",
			seconds(time.Duration(fuseRep.CheckNs)))
	}

	counter("mdlogd_runs_total", "Query runs across all wrappers.")
	fmt.Fprintf(&b, "mdlogd_runs_total %d\n", total.Runs)
	counter("mdlogd_spans_total", "Span tuples extracted across all wrappers.")
	fmt.Fprintf(&b, "mdlogd_spans_total %d\n", total.Spans)
	counter("mdlogd_eval_seconds_total", "Engine time across all wrappers.")
	fmt.Fprintf(&b, "mdlogd_eval_seconds_total %s\n", seconds(total.Eval))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
