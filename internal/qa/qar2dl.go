package qa

import (
	"fmt"

	"mdlog/internal/datalog"
)

// ToDatalog implements Theorem 4.11: the translation of a ranked query
// automaton into an equivalent monadic datalog program over τ_rk. The
// encoding follows the paper exactly:
//
//   - predicates are pairs ⟨q0, q⟩ — rendered st_<q0>_<q> with ∇
//     rendered "inf" — meaning "node x was assigned q at some point
//     when its parent's most recent assignment was q0";
//   - one rule per automaton transition, quantified over q0 ∈ Q ∪ {∇}
//     (and over the parent state q for up transitions), which is where
//     the quadratic size bound comes from;
//   - accept(x) ← root(x), ⟨q0,q⟩(x) for final q, and
//     query(x) ← ⟨q0,q⟩(x), label_a(x), accept(y) for λ(q,a) = 1.
//
// The output program is monadic datalog over τ_rk (child_k relations)
// and evaluates in O(|P|·|dom|) by Theorem 4.2, in contrast to the
// superpolynomial direct runs of Example 4.21.

// nabla is the rendering of the paper's ∇ dummy parent state.
const nabla = -1

func pairPred(q0, q State) string {
	if q0 == nabla {
		return fmt.Sprintf("st_inf_%d", q)
	}
	return fmt.Sprintf("st_%d_%d", q0, q)
}

// ToDatalog translates the automaton; queryPred names the selection
// predicate (default "query").
func (a *QAr) ToDatalog(queryPred string) *datalog.Program {
	if queryPred == "" {
		queryPred = "query"
	}
	p := &datalog.Program{Query: queryPred}
	V, At, R := datalog.V, datalog.At, datalog.R
	allQ0 := make([]State, 0, a.NumStates+1)
	allQ0 = append(allQ0, nabla)
	for q := 0; q < a.NumStates; q++ {
		allQ0 = append(allQ0, q)
	}

	// (1) Start state.
	p.Add(R(At(pairPred(nabla, a.Start), V("X")), At("root", V("X"))))

	// (2) Up transitions: δ↑(⟨q1,a1⟩,...,⟨qm,am⟩) = q′.
	for key, qp := range a.DeltaUp {
		pairs := decodeUpKey(key)
		for _, q0 := range allQ0 {
			for q := 0; q < a.NumStates; q++ {
				body := []datalog.Atom{At(pairPred(q0, q), V("X"))}
				for i, pr := range pairs {
					xi := fmt.Sprintf("X%d", i+1)
					body = append(body,
						At(childK(i+1), V("X"), V(xi)),
						At(pairPred(q, pr.Q), V(xi)),
						At("label_"+pr.A, V(xi)))
				}
				p.Add(R(At(pairPred(q0, qp), V("X")), body...))
			}
		}
	}

	// (3) Down transitions: δ↓(q, a, m) = q1 ... qm.
	for sl, states := range a.DeltaDown {
		for i, qi := range states {
			for _, q0 := range allQ0 {
				p.Add(R(At(pairPred(sl.Q, qi), V("Xi")),
					At(pairPred(q0, sl.Q), V("X")),
					At(childK(i+1), V("X"), V("Xi")),
					At("label_"+sl.A, V("X"))))
			}
		}
	}

	// (4) Root transitions: δroot(q, a) = q′.
	for sl, qp := range a.DeltaRoot {
		p.Add(R(At(pairPred(nabla, qp), V("X")),
			At(pairPred(nabla, sl.Q), V("X")),
			At("label_"+sl.A, V("X")),
			At("root", V("X"))))
	}

	// (5) Leaf transitions: δleaf(q, a) = q′.
	for sl, qp := range a.DeltaLeaf {
		for _, q0 := range allQ0 {
			p.Add(R(At(pairPred(q0, qp), V("X")),
				At(pairPred(q0, sl.Q), V("X")),
				At("label_"+sl.A, V("X")),
				At("leaf", V("X"))))
		}
	}

	// (6) Acceptance.
	for q := range a.Final {
		for _, q0 := range allQ0 {
			p.Add(R(At("accept", V("X")),
				At("root", V("X")), At(pairPred(q0, q), V("X"))))
		}
	}

	// (7) Selection function.
	for sl, sel := range a.Select {
		if !sel {
			continue
		}
		for _, q0 := range allQ0 {
			p.Add(R(At(queryPred, V("X")),
				At(pairPred(q0, sl.Q), V("X")),
				At("label_"+sl.A, V("X")),
				At("accept", V("Y"))))
		}
	}
	return p
}

func childK(k int) string { return fmt.Sprintf("child_%d", k) }

// decodeUpKey inverts UpKey.
func decodeUpKey(key string) []SL {
	var out []SL
	for i := 0; i < len(key); {
		if key[i] != '(' {
			panic("qa: malformed up key")
		}
		j := i + 1
		q := 0
		for key[j] != ',' {
			q = q*10 + int(key[j]-'0')
			j++
		}
		j++
		k := j
		for key[k] != ')' {
			k++
		}
		out = append(out, SL{q, key[j:k]})
		i = k + 1
	}
	return out
}
