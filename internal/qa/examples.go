package qa

import "fmt"

// This file constructs the paper's worked query automata.

// Example49 builds the ranked (K = 2) query automaton of Example 4.9
// over Σ = {a, leafLabels...}: it selects the nodes rooting subtrees
// with an even number of "a"-labeled nodes, by descending to the
// leaves and summing subtree sizes modulo two on the way up.
//
// States: 0 = s↓ (descending), 1 = s0 (even below), 2 = s1 (odd below).
// D = {s↓} × Σ, U = {s0, s1} × Σ; final states {s0, s1}.
func Example49(labels ...string) *QAr {
	if len(labels) == 0 {
		labels = []string{"a"}
	}
	alpha := map[string]int{}
	for _, l := range labels {
		alpha[l] = 2
	}
	a := NewQAr(3, alpha)
	const sDown, s0, s1 = 0, 1, 2
	a.Start = sDown
	a.Final[s0] = true
	a.Final[s1] = true
	chi := func(l string) int {
		if l == "a" {
			return 1
		}
		return 0
	}
	for _, l := range labels {
		// (1) descend: δ↓(s↓, *, 2) = ⟨s↓, s↓⟩.
		a.Down[SL{sDown, l}] = true
		a.DeltaDown[SL{sDown, l}] = []State{sDown, sDown}
		// (2) leaves: δleaf(s↓, *) = s0.
		a.DeltaLeaf[SL{sDown, l}] = s0
		// Selection: λ(s0, ¬a) = 1 and λ(s1, a) = 1.
		if l == "a" {
			a.Select[SL{s1, l}] = true
		} else {
			a.Select[SL{s0, l}] = true
		}
	}
	// (3) ascend: δ↑(⟨si,l1⟩,⟨sj,l2⟩) = s_x, x = i+j+χ(l1)+χ(l2) mod 2.
	for i := 0; i <= 1; i++ {
		for j := 0; j <= 1; j++ {
			for _, l1 := range labels {
				for _, l2 := range labels {
					x := (i + j + chi(l1) + chi(l2)) % 2
					a.DeltaUp[UpKey([]SL{{s0 + i, l1}, {s0 + j, l2}})] = s0 + x
				}
			}
		}
	}
	return a
}

// Example421 builds the automaton family A_β of Example 4.21 over
// Σ = {a} (ranked, K = 2), parameterized by α ≥ 1 with β = 2^α.
// Runs of A_β on complete binary trees with n nodes take
// Θ(n · ((n+1)/2)^α) steps, while the datalog translation evaluates in
// time linear in n — the paper's separation between direct query
// automaton execution and the Theorem 4.11 simulation.
//
// States q_{i,j} for 1 ≤ i, j ≤ β+1 are encoded as (i-1)*(β+1)+(j-1).
func Example421(alpha int) *QAr {
	beta := 1 << uint(alpha)
	side := beta + 1
	st := func(i, j int) State { return (i-1)*side + (j - 1) }
	a := NewQAr(side*side, map[string]int{"a": 2})
	a.Start = st(1, 1)
	a.Final[st(1, beta+1)] = true
	for i := 1; i <= beta+1; i++ {
		for j := 1; j <= beta; j++ {
			// D = {(q_{i,j}, a) | j ≤ β}: descend.
			a.Down[SL{st(i, j), "a"}] = true
			// δ↓(q_{i,j}, a, 2) = ⟨q_{i,1}, q_{j,1}⟩.
			a.DeltaDown[SL{st(i, j), "a"}] = []State{st(i, 1), st(j, 1)}
		}
		// δleaf(q_{i,1}, a) = q_{i,β+1}.
		a.DeltaLeaf[SL{st(i, 1), "a"}] = st(i, beta+1)
	}
	// δ↑((q_{i,β+1}, a), (q_{j,β+1}, a)) = q_{i,j+1}.
	for i := 1; i <= beta+1; i++ {
		for j := 1; j <= beta; j++ {
			a.DeltaUp[UpKey([]SL{{st(i, beta+1), "a"}, {st(j, beta+1), "a"}})] = st(i, j+1)
		}
	}
	// Any selection function will do (the example only measures run
	// length); select nothing.
	return a
}

// Example421Steps returns the exact number of transitions of A_β's run
// on the complete binary tree of the given depth: the run performs,
// per internal node visit cycle, β repetitions of (1 down + both
// subtree visits + 1 up), and a single leaf transition at leaves.
func Example421Steps(alpha, depth int) int {
	beta := 1 << uint(alpha)
	steps := 1 // visit(leaf) = 1
	for d := 1; d <= depth; d++ {
		steps = beta * (2 + 2*steps)
	}
	return steps
}

// String renders the automaton size for reports.
func (a *QAr) String() string {
	return fmt.Sprintf("QAr{states: %d, up: %d, down: %d, leaf: %d, root: %d}",
		a.NumStates, len(a.DeltaUp), len(a.DeltaDown), len(a.DeltaLeaf), len(a.DeltaRoot))
}
