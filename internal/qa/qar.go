// Package qa implements the query automata of Neven & Schwentick as
// defined and used in Section 4.3 of Gottlob & Koch (PODS 2002):
//
//   - ranked query automata QAr (Definition 4.8) — two-way
//     deterministic ranked tree automata with a selection function —
//     with a faithful run engine over cuts and configurations,
//     including step counting (Example 4.21 shows runs can take
//     superpolynomially many steps);
//   - strong unranked query automata SQAu (Definition 4.12) with
//     uv*w down languages, NFA up languages and 2DFA stay transitions;
//   - the LOGSPACE-style reductions into monadic datalog
//     (Theorems 4.11 and 4.14), whose output evaluates in linear time.
package qa

import (
	"fmt"
	"sort"

	"mdlog/internal/tree"
)

// State is an automaton state (dense index).
type State = int

// SL is a (state, label) pair — the alphabet of the U/D partition.
type SL struct {
	Q State
	A string
}

// UpKey identifies an up transition by the (state, label) pairs of all
// children, encoded as a string key.
func UpKey(pairs []SL) string {
	key := ""
	for _, p := range pairs {
		key += fmt.Sprintf("(%d,%s)", p.Q, p.A)
	}
	return key
}

// QAr is a ranked query automaton (Definition 4.8).
type QAr struct {
	NumStates int
	Alphabet  []string
	// Rank gives each symbol's arity.
	Rank map[string]int
	// Start is the start state s; Final is the set F.
	Start State
	Final map[State]bool
	// Down contains the (q, a) pairs of the set D; every other pair
	// with a defined behaviour is in U.
	Down map[SL]bool
	// DeltaUp maps UpKey(children pairs) to the parent's new state.
	DeltaUp map[string]State
	// DeltaDown maps (q, a) to the children's states (length = rank(a)).
	DeltaDown map[SL][]State
	// DeltaRoot and DeltaLeaf are the root and leaf transitions.
	DeltaRoot map[SL]State
	DeltaLeaf map[SL]State
	// Select is the selection function λ (true ≙ 1, absent ≙ ⊥).
	Select map[SL]bool
}

// NewQAr allocates an empty automaton shell.
func NewQAr(states int, alphabet map[string]int) *QAr {
	q := &QAr{
		NumStates: states,
		Rank:      map[string]int{},
		Final:     map[State]bool{},
		Down:      map[SL]bool{},
		DeltaUp:   map[string]State{},
		DeltaDown: map[SL][]State{},
		DeltaRoot: map[SL]State{},
		DeltaLeaf: map[SL]State{},
		Select:    map[SL]bool{},
	}
	for a, r := range alphabet {
		q.Alphabet = append(q.Alphabet, a)
		q.Rank[a] = r
	}
	sort.Strings(q.Alphabet)
	return q
}

// StepKind labels the transitions of a run trace.
type StepKind int

const (
	StepDown StepKind = iota
	StepUp
	StepLeaf
	StepRoot
	StepStay
)

func (k StepKind) String() string {
	switch k {
	case StepDown:
		return "down"
	case StepUp:
		return "up"
	case StepLeaf:
		return "leaf"
	case StepRoot:
		return "root"
	case StepStay:
		return "stay"
	}
	return "?"
}

// TraceStep records one applied transition.
type TraceStep struct {
	Kind StepKind
	// Node is the site of the transition (the parent for down/up/stay).
	Node int
	// Assigned lists the (node, state) assignments the step made.
	Assigned [][2]int
}

// Run is the result of executing a query automaton.
type Run struct {
	Steps     int
	Accepting bool
	// History is the paper's H = {⟨q,n⟩}: per node, the set of states
	// it was assigned at any time.
	History []map[State]bool
	// Selected is the set of nodes selected by λ during the run (only
	// meaningful when Accepting).
	Selected []int
	// Trace is the applied-transition sequence (only kept if requested).
	Trace []TraceStep
}

// RunOptions controls execution.
type RunOptions struct {
	MaxSteps  int  // abort guard; 0 means 1 << 26
	KeepTrace bool // record the transition sequence
}

// Run executes the automaton on a ranked tree (Definition 4.8). The
// automaton is deterministic: at every point each node admits at most
// one transition; the schedule (which enabled transition fires first)
// does not affect the assignment history.
func (a *QAr) Run(t *tree.Tree, opts RunOptions) (*Run, error) {
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 1 << 26
	}
	n := t.Size()
	r := &Run{History: make([]map[State]bool, n)}
	for i := range r.History {
		r.History[i] = map[State]bool{}
	}
	// cut[v] = current state of v, or -1 if v not in the cut.
	cut := make([]int, n)
	for i := range cut {
		cut[i] = -1
	}
	selected := map[int]bool{}

	assign := func(v int, q State) {
		cut[v] = q
		r.History[v][q] = true
		if a.Select[SL{q, t.Nodes[v].Label}] {
			selected[v] = true
		}
	}

	// queue of candidate transition sites (node ids). A site may be
	// enqueued multiple times; enabledness is re-checked on dequeue.
	var queue []int
	inQueue := make([]bool, n)
	push := func(v int) {
		if !inQueue[v] {
			inQueue[v] = true
			queue = append(queue, v)
		}
	}
	// notify enqueues the transitions possibly enabled after v's state
	// changed: v itself (down/leaf/root) and its parent (up).
	notify := func(v int) {
		push(v)
		if p := t.Nodes[v].Parent; p != nil {
			push(p.ID)
		}
	}

	assign(t.Root.ID, a.Start)
	notify(t.Root.ID)

	record := func(kind StepKind, site int, assigned [][2]int) {
		r.Steps++
		if opts.KeepTrace {
			r.Trace = append(r.Trace, TraceStep{Kind: kind, Node: site, Assigned: assigned})
		}
	}

	for len(queue) > 0 {
		if r.Steps > maxSteps {
			return nil, fmt.Errorf("qa: run exceeded %d steps (non-terminating automaton?)", maxSteps)
		}
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		nd := t.Nodes[v]

		// Case 1: v in the cut with a D-pair: leaf or down transition.
		if cut[v] >= 0 {
			pair := SL{cut[v], nd.Label}
			if a.Down[pair] {
				if nd.IsLeaf() {
					if q, ok := a.DeltaLeaf[pair]; ok {
						assign(v, q)
						record(StepLeaf, v, [][2]int{{v, q}})
						notify(v)
					}
				} else if states, ok := a.DeltaDown[pair]; ok {
					if len(states) != len(nd.Children) {
						return nil, fmt.Errorf("qa: down transition arity %d at node %d with %d children", len(states), v, len(nd.Children))
					}
					var as [][2]int
					cut[v] = -1
					for i, c := range nd.Children {
						assign(c.ID, states[i])
						as = append(as, [2]int{c.ID, states[i]})
					}
					record(StepDown, v, as)
					for _, c := range nd.Children {
						notify(c.ID)
					}
				}
			} else if v == t.Root.ID {
				// Root transition: cut must be {root} with a U-pair.
				if q, ok := a.DeltaRoot[pair]; ok && cutIsRootOnly(cut, v) {
					assign(v, q)
					record(StepRoot, v, [][2]int{{v, q}})
					notify(v)
				}
			}
		}

		// Case 2: up transition at v — all children in the cut with
		// U-pairs, v itself not in the cut.
		if cut[v] == -1 && len(nd.Children) > 0 {
			pairs := make([]SL, len(nd.Children))
			ok := true
			for i, c := range nd.Children {
				if cut[c.ID] < 0 {
					ok = false
					break
				}
				pairs[i] = SL{cut[c.ID], c.Label}
				if a.Down[pairs[i]] {
					ok = false
					break
				}
			}
			if ok {
				if q, defined := a.DeltaUp[UpKey(pairs)]; defined {
					for _, c := range nd.Children {
						cut[c.ID] = -1
					}
					assign(v, q)
					record(StepUp, v, [][2]int{{v, q}})
					notify(v)
				}
			}
		}
	}

	// Acceptance: the final configuration must assign a final state to
	// the root.
	r.Accepting = cut[t.Root.ID] >= 0 && a.Final[cut[t.Root.ID]]
	if r.Accepting {
		for v := range selected {
			r.Selected = append(r.Selected, v)
		}
		sort.Ints(r.Selected)
	}
	return r, nil
}

func cutIsRootOnly(cut []int, root int) bool {
	for v, q := range cut {
		if q >= 0 && v != root {
			return false
		}
	}
	return true
}
