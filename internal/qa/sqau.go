package qa

import (
	"fmt"
	"sort"

	"mdlog/internal/automata"
	"mdlog/internal/tree"
)

// SQAu is a strong unranked query automaton (Definition 4.12).
//
// Down languages L↓(q,a) are given in the Proposition 4.13 normal form
// (finite unions of u v* w over the state alphabet; constant density 1
// guarantees at most one word per length). Up languages L↑(q) are
// given as NFAs over (state, label) pair symbols; the stay language
// Ustay likewise, with its 2DFA B and selection λB.
type SQAu struct {
	NumStates int
	Alphabet  []string
	labelIdx  map[string]int
	Start     State
	Final     map[State]bool
	// Down is the set D ⊆ Q × Σ; pairs outside it are in U.
	Down map[SL]bool
	// DeltaDown maps (q, a) to the uv*w decomposition of L↓(q, a).
	DeltaDown map[SL][]automata.UVW
	DeltaRoot map[SL]State
	DeltaLeaf map[SL]State
	// Up lists the up languages: word ∈ L of entry i sends the parent
	// to Target_i (the L↑(q) of the paper; languages must be disjoint).
	Up []UpLang
	// Stay is the optional stay transition (nil if absent).
	Stay *StayRule
	// Select is the selection function λ.
	Select map[SL]bool
}

// UpLang is one up language L↑(Target).
type UpLang struct {
	Target State
	// Lang is an NFA over pair symbols (see PairSym).
	Lang *automata.NFA
}

// StayRule bundles Ustay and the 2DFA B with its selection λB.
type StayRule struct {
	// Guard is an NFA over pair symbols recognizing Ustay.
	Guard *automata.NFA
	B     *TwoDFA
}

// TwoDFA is a two-way deterministic finite automaton over pair
// symbols, with the selection function λB of Definition 4.12.
type TwoDFA struct {
	NumStates int
	Start     int
	// Delta maps (state, pairSym) to (state, direction); direction is
	// +1 (R) or -1 (L). Missing entries halt the automaton.
	Delta map[[2]int][2]int
	// Assign is λB: (state, pairSym) → new automaton state for the
	// node under the head (missing = ⊥).
	Assign map[[2]int]State
}

// NewSQAu allocates an automaton shell over the given label alphabet.
func NewSQAu(states int, labels []string) *SQAu {
	a := &SQAu{
		NumStates: states,
		Alphabet:  append([]string(nil), labels...),
		labelIdx:  map[string]int{},
		Final:     map[State]bool{},
		Down:      map[SL]bool{},
		DeltaDown: map[SL][]automata.UVW{},
		DeltaRoot: map[SL]State{},
		DeltaLeaf: map[SL]State{},
		Select:    map[SL]bool{},
	}
	sort.Strings(a.Alphabet)
	for i, l := range a.Alphabet {
		a.labelIdx[l] = i
	}
	return a
}

// PairSym encodes a (state, label) pair as an NFA symbol.
func (a *SQAu) PairSym(q State, label string) int {
	li, ok := a.labelIdx[label]
	if !ok {
		li = 0
	}
	return q*len(a.Alphabet) + li
}

// NumPairSyms is the pair-symbol alphabet size.
func (a *SQAu) NumPairSyms() int { return a.NumStates * len(a.Alphabet) }

// Run executes the automaton on an unranked tree.
func (a *SQAu) Run(t *tree.Tree, opts RunOptions) (*Run, error) {
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 1 << 26
	}
	n := t.Size()
	r := &Run{History: make([]map[State]bool, n)}
	for i := range r.History {
		r.History[i] = map[State]bool{}
	}
	cut := make([]int, n)
	for i := range cut {
		cut[i] = -1
	}
	stayDone := make([]bool, n)
	selected := map[int]bool{}

	assign := func(v int, q State) {
		cut[v] = q
		r.History[v][q] = true
		if a.Select[SL{q, t.Nodes[v].Label}] {
			selected[v] = true
		}
	}
	var queue []int
	inQueue := make([]bool, n)
	push := func(v int) {
		if !inQueue[v] {
			inQueue[v] = true
			queue = append(queue, v)
		}
	}
	notify := func(v int) {
		push(v)
		if p := t.Nodes[v].Parent; p != nil {
			push(p.ID)
		}
	}
	record := func(kind StepKind, site int, assigned [][2]int) {
		r.Steps++
		if opts.KeepTrace {
			r.Trace = append(r.Trace, TraceStep{Kind: kind, Node: site, Assigned: assigned})
		}
	}

	assign(t.Root.ID, a.Start)
	notify(t.Root.ID)

	for len(queue) > 0 {
		if r.Steps > maxSteps {
			return nil, fmt.Errorf("qa: SQAu run exceeded %d steps", maxSteps)
		}
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		nd := t.Nodes[v]

		if cut[v] >= 0 {
			pair := SL{cut[v], nd.Label}
			if a.Down[pair] {
				if nd.IsLeaf() {
					if q, ok := a.DeltaLeaf[pair]; ok {
						assign(v, q)
						record(StepLeaf, v, [][2]int{{v, q}})
						notify(v)
					}
				} else if langs, ok := a.DeltaDown[pair]; ok {
					word, err := uniqueWordOfLength(langs, len(nd.Children))
					if err != nil {
						return nil, fmt.Errorf("qa: down at node %d: %v", v, err)
					}
					if word != nil {
						var as [][2]int
						cut[v] = -1
						for i, c := range nd.Children {
							assign(c.ID, word[i])
							as = append(as, [2]int{c.ID, word[i]})
						}
						record(StepDown, v, as)
						for _, c := range nd.Children {
							notify(c.ID)
						}
					}
				}
			} else if v == t.Root.ID {
				if q, ok := a.DeltaRoot[pair]; ok && cutIsRootOnly(cut, v) {
					assign(v, q)
					record(StepRoot, v, [][2]int{{v, q}})
					notify(v)
				}
			}
		}

		// Up or stay transition at v.
		if cut[v] == -1 && len(nd.Children) > 0 {
			word := make([]int, len(nd.Children))
			ok := true
			for i, c := range nd.Children {
				if cut[c.ID] < 0 || a.Down[SL{cut[c.ID], c.Label}] {
					ok = false
					break
				}
				word[i] = a.PairSym(cut[c.ID], c.Label)
			}
			if !ok {
				continue
			}
			target := -1
			for _, ul := range a.Up {
				if ul.Lang.AcceptsWord(word) {
					if target != -1 {
						return nil, fmt.Errorf("qa: up languages not disjoint at node %d", v)
					}
					target = ul.Target
				}
			}
			if target != -1 {
				for _, c := range nd.Children {
					cut[c.ID] = -1
				}
				assign(v, target)
				record(StepUp, v, [][2]int{{v, target}})
				notify(v)
				continue
			}
			if a.Stay != nil && a.Stay.Guard.AcceptsWord(word) {
				if stayDone[v] {
					return nil, fmt.Errorf("qa: second stay transition at node %d", v)
				}
				stayDone[v] = true
				newStates, err := a.runStay(word)
				if err != nil {
					return nil, fmt.Errorf("qa: stay at node %d: %v", v, err)
				}
				var as [][2]int
				for i, c := range nd.Children {
					assign(c.ID, newStates[i])
					as = append(as, [2]int{c.ID, newStates[i]})
				}
				record(StepStay, v, as)
				for _, c := range nd.Children {
					notify(c.ID)
				}
			}
		}
	}

	r.Accepting = cut[t.Root.ID] >= 0 && a.Final[cut[t.Root.ID]]
	if r.Accepting {
		for v := range selected {
			r.Selected = append(r.Selected, v)
		}
		sort.Ints(r.Selected)
	}
	return r, nil
}

// uniqueWordOfLength finds the unique word of length m in the union of
// uv*w languages (density 1), nil if none exists.
func uniqueWordOfLength(langs []automata.UVW, m int) ([]int, error) {
	var found []int
	for _, l := range langs {
		if w, ok := l.WordOfLength(m); ok {
			if found != nil && !equalWords(found, w) {
				return nil, fmt.Errorf("two distinct words of length %d (density > 1)", m)
			}
			found = w
		}
	}
	return found, nil
}

func equalWords(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runStay simulates the 2DFA B over the children word, collecting the
// λB assignments; every child must receive exactly one state.
func (a *SQAu) runStay(word []int) ([]State, error) {
	b := a.Stay.B
	out := make([]State, len(word))
	got := make([]bool, len(word))
	visited := map[[2]int]bool{}
	s, pos := b.Start, 0
	for pos >= 0 && pos < len(word) {
		if visited[[2]int{s, pos}] {
			return nil, fmt.Errorf("2DFA loops at state %d position %d", s, pos)
		}
		visited[[2]int{s, pos}] = true
		sym := word[pos]
		if q, ok := b.Assign[[2]int{s, sym}]; ok {
			if got[pos] && out[pos] != q {
				return nil, fmt.Errorf("2DFA assigns two states to position %d", pos)
			}
			out[pos] = q
			got[pos] = true
		}
		next, ok := b.Delta[[2]int{s, sym}]
		if !ok {
			break
		}
		s, pos = next[0], pos+next[1]
	}
	for i, g := range got {
		if !g {
			return nil, fmt.Errorf("2DFA left position %d unassigned", i)
		}
	}
	return out, nil
}

// String renders the automaton size for reports.
func (a *SQAu) String() string {
	return fmt.Sprintf("SQAu{states: %d, down: %d, up: %d, leaf: %d, stay: %v}",
		a.NumStates, len(a.DeltaDown), len(a.Up), len(a.DeltaLeaf), a.Stay != nil)
}
