package qa

import (
	"fmt"

	"mdlog/internal/automata"
	"mdlog/internal/datalog"
)

// ToDatalog implements Theorem 4.14: the translation of a strong
// unranked query automaton into an equivalent monadic datalog program
// over τ_ur ∪ {lastchild}. The encoding follows the paper:
//
//   - down transitions via the (a)–(f) marking construction for each
//     subexpression u v* w of L↓(q, a) (Example 4.15 / Figure 2),
//     generalized to empty u / v / w components;
//   - up transitions by traversing the children left-to-right through
//     the NFA of L↑(q0), walking back on acceptance ((a)–(c) of the
//     up construction);
//   - stay transitions by simulating the 2DFA with one predicate per
//     (parent state, 2DFA state), plus its Ustay guard;
//   - start/root/leaf/acceptance/selection rules as in Theorem 4.11.
func (a *SQAu) ToDatalog(queryPred string) *datalog.Program {
	if queryPred == "" {
		queryPred = "query"
	}
	p := &datalog.Program{Query: queryPred}
	V, At, R := datalog.V, datalog.At, datalog.R
	allQ0 := make([]State, 0, a.NumStates+1)
	allQ0 = append(allQ0, nabla)
	for q := 0; q < a.NumStates; q++ {
		allQ0 = append(allQ0, q)
	}

	// (1) Start state.
	p.Add(R(At(pairPred(nabla, a.Start), V("X")), At("root", V("X"))))

	// (2) Down transitions.
	for sl, langs := range a.DeltaDown {
		for i, l := range langs {
			a.downRules(p, sl, i, l, allQ0)
		}
	}

	// (3) Up transitions.
	for ui, ul := range a.Up {
		a.upRules(p, ui, ul, allQ0)
	}

	// (4) Stay transitions.
	if a.Stay != nil {
		a.stayRules(p, allQ0)
	}

	// (5) Root transitions.
	for sl, qp := range a.DeltaRoot {
		p.Add(R(At(pairPred(nabla, qp), V("X")),
			At(pairPred(nabla, sl.Q), V("X")),
			At("label_"+sl.A, V("X")),
			At("root", V("X"))))
	}

	// (6) Leaf transitions.
	for sl, qp := range a.DeltaLeaf {
		for _, q0 := range allQ0 {
			p.Add(R(At(pairPred(q0, qp), V("X")),
				At(pairPred(q0, sl.Q), V("X")),
				At("label_"+sl.A, V("X")),
				At("leaf", V("X"))))
		}
	}

	// (7) Acceptance.
	for q := range a.Final {
		for _, q0 := range allQ0 {
			p.Add(R(At("accept", V("X")),
				At("root", V("X")), At(pairPred(q0, q), V("X"))))
		}
	}

	// (8) Selection.
	for sl, sel := range a.Select {
		if !sel {
			continue
		}
		for _, q0 := range allQ0 {
			p.Add(R(At(queryPred, V("X")),
				At(pairPred(q0, sl.Q), V("X")),
				At("label_"+sl.A, V("X")),
				At("accept", V("Y"))))
		}
	}
	return p
}

// downRules emits the (a)–(f) construction for one subexpression
// u v* w of L↓(q, a) (index i). Predicate names carry (q, labelIdx, i).
func (a *SQAu) downRules(p *datalog.Program, sl SL, i int, l automata.UVW, allQ0 []State) {
	V, At, R := datalog.V, datalog.At, datalog.R
	q := sl.Q
	li := a.labelIdx[sl.A]
	tag := fmt.Sprintf("%d_%d_%d", q, li, i)
	utmp := func(k int) string { return fmt.Sprintf("dtu_%s_%d", tag, k) }
	wtmp := func(k int) string { return fmt.Sprintf("dtw_%s_%d", tag, k) }
	vtmp := func(k int) string { return fmt.Sprintf("dtv_%s_%d", tag, k) }
	bw := "dtbw_" + tag
	succ := "dtsucc_" + tag
	labelAtom := At("label_"+sl.A, V("X"))

	// (a) Mark the |u| leftmost children.
	if len(l.U) > 0 {
		for _, q0 := range allQ0 {
			p.Add(R(At(utmp(1), V("X1")),
				At(pairPred(q0, q), V("X")), At("firstchild", V("X"), V("X1")), labelAtom))
		}
		for k := 1; k < len(l.U); k++ {
			p.Add(R(At(utmp(k+1), V("X1")),
				At(utmp(k), V("X0")), At("nextsibling", V("X0"), V("X1"))))
		}
	}

	// (b) Mark the |w| rightmost children.
	if len(l.W) > 0 {
		for _, q0 := range allQ0 {
			p.Add(R(At(wtmp(len(l.W)), V("X1")),
				At(pairPred(q0, q), V("X")), At("lastchild", V("X"), V("X1")), labelAtom))
		}
		for k := len(l.W); k > 1; k-- {
			p.Add(R(At(wtmp(k-1), V("X1")),
				At(wtmp(k), V("X0")), At("nextsibling", V("X1"), V("X0"))))
		}
		// (c) Everything strictly left of the w block.
		p.Add(R(At(bw, V("X1")),
			At(wtmp(1), V("X0")), At("nextsibling", V("X1"), V("X0"))))
		p.Add(R(At(bw, V("X1")),
			At(bw, V("X0")), At("nextsibling", V("X1"), V("X0"))))
	} else {
		// (c') With w = ε every child may carry v symbols.
		for _, q0 := range allQ0 {
			p.Add(R(At(bw, V("X1")),
				At(pairPred(q0, q), V("X")), At("lastchild", V("X"), V("X1")), labelAtom))
		}
		p.Add(R(At(bw, V("X1")),
			At(bw, V("X0")), At("nextsibling", V("X1"), V("X0"))))
	}

	// (d) v-repetition markings.
	if len(l.V) > 0 {
		if len(l.U) > 0 {
			p.Add(R(At(vtmp(1), V("X1")),
				At(utmp(len(l.U)), V("X0")), At("nextsibling", V("X0"), V("X1")), At(bw, V("X1"))))
		} else {
			for _, q0 := range allQ0 {
				p.Add(R(At(vtmp(1), V("X1")),
					At(pairPred(q0, q), V("X")), At("firstchild", V("X"), V("X1")), labelAtom, At(bw, V("X1"))))
			}
		}
		for m := 1; m < len(l.V); m++ {
			p.Add(R(At(vtmp(m+1), V("X1")),
				At(vtmp(m), V("X0")), At("nextsibling", V("X0"), V("X1")), At(bw, V("X1"))))
		}
		p.Add(R(At(vtmp(1), V("X1")),
			At(vtmp(len(l.V)), V("X0")), At("nextsibling", V("X0"), V("X1")), At(bw, V("X1"))))
	}

	// (e) Success detection: the word length fits.
	switch {
	case len(l.U) > 0 && len(l.W) > 0:
		p.Add(R(At(succ, V("X0")),
			At(utmp(len(l.U)), V("X0")), At("nextsibling", V("X0"), V("X1")), At(wtmp(1), V("X1"))))
	case len(l.U) > 0: // w = ε
		p.Add(R(At(succ, V("X0")),
			At(utmp(len(l.U)), V("X0")), At("lastsibling", V("X0"))))
	case len(l.W) > 0: // u = ε, k = 0: the w block starts at child 1.
		for _, q0 := range allQ0 {
			p.Add(R(At(succ, V("X1")),
				At(pairPred(q0, q), V("X")), At("firstchild", V("X"), V("X1")), labelAtom, At(wtmp(1), V("X1"))))
		}
	}
	if len(l.V) > 0 {
		if len(l.W) > 0 {
			p.Add(R(At(succ, V("X0")),
				At(vtmp(len(l.V)), V("X0")), At("nextsibling", V("X0"), V("X1")), At(wtmp(1), V("X1"))))
		} else {
			p.Add(R(At(succ, V("X0")),
				At(vtmp(len(l.V)), V("X0")), At("lastsibling", V("X0"))))
		}
	}
	p.Add(R(At(succ, V("X1")), At(succ, V("X0")), At("nextsibling", V("X0"), V("X1"))))
	p.Add(R(At(succ, V("X1")), At(succ, V("X0")), At("nextsibling", V("X1"), V("X0"))))

	// (f) Write the new state assignments.
	emit := func(marker string, sigma State) {
		p.Add(R(At(pairPred(q, sigma), V("X")),
			At(succ, V("X")), At(marker, V("X"))))
	}
	for j, s := range l.U {
		emit(utmp(j+1), s)
	}
	for m, s := range l.V {
		emit(vtmp(m+1), s)
	}
	for j, s := range l.W {
		emit(wtmp(j+1), s)
	}
}

// upRules emits the NFA traversal for one up language L↑(target)
// ((a)–(c) of the Theorem 4.14 up construction).
func (a *SQAu) upRules(p *datalog.Program, ui int, ul UpLang, allQ0 []State) {
	V, At, R := datalog.V, datalog.At, datalog.R
	tmp := func(q2 State, s int) string { return fmt.Sprintf("ut_%d_%d_%d", ui, q2, s) }
	bck := func(q2 State) string { return fmt.Sprintf("ubck_%d_%d", ui, q2) }

	// Collect the NFA transitions, with ε-transitions eliminated by
	// working over ε-closures.
	nfa := ul.Lang
	for q2 := 0; q2 < a.NumStates; q2++ {
		// (a) First child: s' reachable from the start by one symbol.
		start := nfa.StartSet()
		for q := 0; q < a.NumStates; q++ {
			for _, lbl := range a.Alphabet {
				sym := a.PairSym(q, lbl)
				if a.Down[SL{q, lbl}] {
					continue // the NFA alphabet is U
				}
				next := nfa.Step(start, sym)
				for sp, in := range next {
					if !in {
						continue
					}
					p.Add(R(At(tmp(q2, sp), V("X")),
						At("firstchild", V("X0"), V("X")),
						At(pairPred(q2, q), V("X")),
						At("label_"+lbl, V("X"))))
				}
			}
		}
		// (b) Subsequent children.
		for s := 0; s < nfa.NumStates; s++ {
			single := make([]bool, nfa.NumStates)
			single[s] = true
			for q := 0; q < a.NumStates; q++ {
				for _, lbl := range a.Alphabet {
					if a.Down[SL{q, lbl}] {
						continue
					}
					sym := a.PairSym(q, lbl)
					next := nfa.Step(single, sym)
					for sp, in := range next {
						if !in {
							continue
						}
						p.Add(R(At(tmp(q2, sp), V("X1")),
							At(tmp(q2, s), V("X0")),
							At("nextsibling", V("X0"), V("X1")),
							At(pairPred(q2, q), V("X1")),
							At("label_"+lbl, V("X1"))))
					}
				}
			}
		}
		// (c) Accepting at the last sibling: walk back and move up.
		// Acceptance must respect ε-closure of reached states.
		closure := make([]bool, nfa.NumStates)
		for s := 0; s < nfa.NumStates; s++ {
			for i := range closure {
				closure[i] = false
			}
			closure[s] = true
			if acceptsViaEps(nfa, closure) {
				p.Add(R(At(bck(q2), V("X")),
					At(tmp(q2, s), V("X")), At("lastsibling", V("X"))))
			}
		}
		p.Add(R(At(bck(q2), V("X0")),
			At("nextsibling", V("X0"), V("X1")), At(bck(q2), V("X1"))))
		for _, q1 := range allQ0 {
			p.Add(R(At(pairPred(q1, ul.Target), V("X0")),
				At(pairPred(q1, q2), V("X0")),
				At("firstchild", V("X0"), V("X")),
				At(bck(q2), V("X"))))
		}
	}
}

// acceptsViaEps reports whether the ε-closure of the set contains an
// accepting state.
func acceptsViaEps(nfa *automata.NFA, set []bool) bool {
	// Step with no symbol: reuse StartSet-style closure by stepping the
	// identity — the NFA interface exposes closures via Step on an
	// empty word; emulate by checking the closure manually.
	closed := append([]bool(nil), set...)
	changed := true
	for changed {
		changed = false
		nfa.EpsTransitions(func(q, r int) {
			if closed[q] && !closed[r] {
				closed[r] = true
				changed = true
			}
		})
	}
	for s, in := range closed {
		if in && nfa.Accept[s] {
			return true
		}
	}
	return false
}

// stayRules emits the Ustay guard traversal plus the 2DFA simulation.
func (a *SQAu) stayRules(p *datalog.Program, allQ0 []State) {
	V, At, R := datalog.V, datalog.At, datalog.R
	guard := a.Stay.Guard
	b := a.Stay.B
	gtmp := func(q2 State, s int) string { return fmt.Sprintf("gt_%d_%d", q2, s) }
	gbck := func(q2 State) string { return fmt.Sprintf("gbck_%d", q2) }
	sy := func(q2 State, s int) string { return fmt.Sprintf("sy_%d_%d", q2, s) }

	for q2 := 0; q2 < a.NumStates; q2++ {
		// Guard traversal (same shape as upRules).
		start := guard.StartSet()
		for q := 0; q < a.NumStates; q++ {
			for _, lbl := range a.Alphabet {
				if a.Down[SL{q, lbl}] {
					continue
				}
				sym := a.PairSym(q, lbl)
				for sp, in := range guard.Step(start, sym) {
					if !in {
						continue
					}
					p.Add(R(At(gtmp(q2, sp), V("X")),
						At("firstchild", V("X0"), V("X")),
						At(pairPred(q2, q), V("X")),
						At("label_"+lbl, V("X"))))
				}
			}
		}
		for s := 0; s < guard.NumStates; s++ {
			single := make([]bool, guard.NumStates)
			single[s] = true
			for q := 0; q < a.NumStates; q++ {
				for _, lbl := range a.Alphabet {
					if a.Down[SL{q, lbl}] {
						continue
					}
					sym := a.PairSym(q, lbl)
					for sp, in := range guard.Step(single, sym) {
						if !in {
							continue
						}
						p.Add(R(At(gtmp(q2, sp), V("X1")),
							At(gtmp(q2, s), V("X0")),
							At("nextsibling", V("X0"), V("X1")),
							At(pairPred(q2, q), V("X1")),
							At("label_"+lbl, V("X1"))))
					}
				}
			}
		}
		for s := 0; s < guard.NumStates; s++ {
			single := make([]bool, guard.NumStates)
			single[s] = true
			if acceptsViaEps(guard, single) {
				p.Add(R(At(gbck(q2), V("X")),
					At(gtmp(q2, s), V("X")), At("lastsibling", V("X"))))
			}
		}
		p.Add(R(At(gbck(q2), V("X0")),
			At("nextsibling", V("X0"), V("X1")), At(gbck(q2), V("X1"))))

		// 2DFA head start: state s0 on the first child, provided the
		// guard matched (gbck has propagated back to the first child).
		for _, q1 := range allQ0 {
			p.Add(R(At(sy(q2, b.Start), V("X")),
				At(pairPred(q1, q2), V("X0")),
				At("firstchild", V("X0"), V("X")),
				At(gbck(q2), V("X"))))
		}

		// 2DFA moves.
		for key, next := range b.Delta {
			s, sym := key[0], key[1]
			q, li := sym/len(a.Alphabet), sym%len(a.Alphabet)
			lbl := a.Alphabet[li]
			sp, dir := next[0], next[1]
			if dir > 0 {
				p.Add(R(At(sy(q2, sp), V("X1")),
					At(sy(q2, s), V("X0")),
					At(pairPred(q2, q), V("X0")),
					At("label_"+lbl, V("X0")),
					At("nextsibling", V("X0"), V("X1"))))
			} else {
				p.Add(R(At(sy(q2, sp), V("X1")),
					At(sy(q2, s), V("X0")),
					At(pairPred(q2, q), V("X0")),
					At("label_"+lbl, V("X0")),
					At("nextsibling", V("X1"), V("X0"))))
			}
		}

		// λB assignments.
		for key, sigma := range b.Assign {
			s, sym := key[0], key[1]
			q, li := sym/len(a.Alphabet), sym%len(a.Alphabet)
			lbl := a.Alphabet[li]
			p.Add(R(At(pairPred(q2, sigma), V("X")),
				At(sy(q2, s), V("X")),
				At(pairPred(q2, q), V("X")),
				At("label_"+lbl, V("X"))))
		}
	}
}
