package qa

import "mdlog/internal/automata"

// ParitySQAu builds a strong unranked query automaton selecting the
// nodes whose subtree contains an even number of "a"-labeled nodes —
// the unranked counterpart of Example 4.9, exercising uv*w down
// languages and NFA up languages.
//
// States: 0 = s↓ (descending, D), 1 = q0 (even number of a's strictly
// below), 2 = q1 (odd below). The up language L↑(q_p) accepts the
// children words whose full-subtree parities sum to p; selection
// λ(q0, ¬a) = λ(q1, a) = 1 picks exactly the even-subtree nodes.
func ParitySQAu(labels ...string) *SQAu {
	if len(labels) == 0 {
		labels = []string{"a"}
	}
	a := NewSQAu(3, labels)
	const sDown, q0, q1 = 0, 1, 2
	a.Start = sDown
	a.Final[q0] = true
	a.Final[q1] = true
	for _, l := range a.Alphabet {
		a.Down[SL{sDown, l}] = true
		// L↓(s↓, l) = s↓* — every child descends.
		a.DeltaDown[SL{sDown, l}] = []automata.UVW{{V: []State{sDown}}}
		// δleaf(s↓, l) = q0 (zero a's strictly below a leaf).
		a.DeltaLeaf[SL{sDown, l}] = q0
		if l == "a" {
			a.Select[SL{q1, l}] = true
		} else {
			a.Select[SL{q0, l}] = true
		}
	}
	// L↑(q_p): parity automaton over pair symbols. Child pair (q_i, l)
	// contributes i + χ(l = a) mod 2 (its full subtree parity).
	parityNFA := func(accept int) *automata.NFA {
		n := automata.NewNFA(2, a.NumPairSyms())
		for _, l := range a.Alphabet {
			for _, q := range []State{q0, q1} {
				contrib := q - q0
				if l == "a" {
					contrib++
				}
				sym := a.PairSym(q, l)
				n.AddTransition(0, sym, contrib%2)
				n.AddTransition(1, sym, (1+contrib)%2)
			}
		}
		n.Accept[accept] = true
		return n
	}
	a.Up = []UpLang{
		{Target: q0, Lang: parityNFA(0)},
		{Target: q1, Lang: parityNFA(1)},
	}
	return a
}

// StaySQAu builds an SQAu that exercises stay transitions: on a flat
// tree (root with m leaf children, all labeled "a") the children first
// descend and return to state p; the stay transition's 2DFA walks the
// children left to right re-labeling them alternately r0, r1; the up
// transition then sends the root to qTop. The selection function picks
// the children in state r0 — the even positions (0-based).
//
// States: 0 = s↓, 1 = p, 2 = r0, 3 = r1, 4 = qTop.
func StaySQAu() *SQAu {
	a := NewSQAu(5, []string{"a"})
	const sDown, pSt, r0, r1, qTop = 0, 1, 2, 3, 4
	a.Start = sDown
	a.Final[qTop] = true
	a.Down[SL{sDown, "a"}] = true
	a.DeltaDown[SL{sDown, "a"}] = []automata.UVW{{V: []State{sDown}}}
	a.DeltaLeaf[SL{sDown, "a"}] = pSt
	a.Select[SL{r0, "a"}] = true

	pSym := a.PairSym(pSt, "a")
	// Ustay = p⁺.
	guard := automata.NewNFA(2, a.NumPairSyms())
	guard.AddTransition(0, pSym, 1)
	guard.AddTransition(1, pSym, 1)
	guard.Accept[1] = true
	// 2DFA: alternate assignments r0 / r1 while moving right.
	b := &TwoDFA{NumStates: 2, Start: 0,
		Delta:  map[[2]int][2]int{},
		Assign: map[[2]int]State{},
	}
	b.Delta[[2]int{0, pSym}] = [2]int{1, +1}
	b.Delta[[2]int{1, pSym}] = [2]int{0, +1}
	b.Assign[[2]int{0, pSym}] = r0
	b.Assign[[2]int{1, pSym}] = r1
	a.Stay = &StayRule{Guard: guard, B: b}

	// Uup = (r0 | r1)⁺ → qTop.
	up := automata.NewNFA(2, a.NumPairSyms())
	for _, r := range []State{r0, r1} {
		up.AddTransition(0, a.PairSym(r, "a"), 1)
		up.AddTransition(1, a.PairSym(r, "a"), 1)
	}
	up.Accept[1] = true
	a.Up = []UpLang{{Target: qTop, Lang: up}}
	return a
}

// Example415SQAu builds the down-transition scenario of Example 4.15 /
// Figure 2: a state q whose down language is L↓(q, a) =
// (q1 q0)* ∪ (q1 q0)* q1. States: 0 = q, 1 = q1, 2 = q0.
func Example415SQAu() *SQAu {
	a := NewSQAu(3, []string{"a"})
	const q, s1, s0 = 0, 1, 2
	a.Start = q
	a.Down[SL{q, "a"}] = true
	a.DeltaDown[SL{q, "a"}] = []automata.UVW{
		{V: []State{s1, s0}},
		{V: []State{s1, s0}, W: []State{s1}},
	}
	// Leaves in q1/q0 are inert (no leaf transitions): the children are
	// in D? No: (q1, a) and (q0, a) are in U by default, and no up
	// language is defined, so the run halts after the down transition —
	// exactly the fragment Figure 2 illustrates.
	return a
}
