package qa

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mdlog/internal/eval"
	"mdlog/internal/paperex"
	"mdlog/internal/tree"
)

// TestExample49Run reproduces the run of Example 4.9: the 3-node tree
// (root n0 with children n1, n2, all labeled a) yields the transition
// sequence down(n0), leaf(n1), leaf(n2), up(n0) — configurations
// c0 → c4 in the paper — with an empty query result.
func TestExample49Run(t *testing.T) {
	a := Example49("a")
	tr := tree.MustParse("a(a,a)")
	run, err := a.Run(tr, RunOptions{KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if run.Steps != 4 {
		t.Fatalf("got %d steps, want 4 (c0..c4); trace: %v", run.Steps, run.Trace)
	}
	wantKinds := []StepKind{StepDown, StepLeaf, StepLeaf, StepUp}
	wantNodes := []int{0, 1, 2, 0}
	for i, st := range run.Trace {
		if st.Kind != wantKinds[i] || st.Node != wantNodes[i] {
			t.Errorf("step %d: %s at %d, want %s at %d", i, st.Kind, st.Node, wantKinds[i], wantNodes[i])
		}
	}
	if !run.Accepting {
		t.Error("run must accept (both s0 and s1 are final)")
	}
	// All three subtrees contain an odd number of a's: empty result.
	if len(run.Selected) != 0 {
		t.Errorf("Selected = %v, want empty", run.Selected)
	}
	// History: n0 was assigned s↓ (0) and s0 (1).
	if !run.History[0][0] || !run.History[0][1] || run.History[0][2] {
		t.Errorf("history of n0 = %v", run.History[0])
	}
}

// TestExample49SelectsEvenA checks the automaton's query against the
// reference semantics on random full binary trees.
func TestExample49SelectsEvenA(t *testing.T) {
	a := Example49("a", "b")
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 40; i++ {
		tr := tree.RandomBinary(rng, 3+rng.Intn(20), []string{"a", "b"}, []string{"a", "b"})
		run, err := a.Run(tr, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !run.Accepting {
			t.Fatalf("run must accept on %s", tr)
		}
		want := paperex.EvenASpec(tr)
		if fmt.Sprint(run.Selected) != fmt.Sprint(want) {
			t.Errorf("on %s: selected %v, want %v", tr, run.Selected, want)
		}
	}
}

// TestQArToDatalogEquivalence is the Theorem 4.11 check: the monadic
// datalog translation computes the same query as the direct run.
func TestQArToDatalogEquivalence(t *testing.T) {
	a := Example49("a", "b")
	prog := a.ToDatalog("query")
	if !prog.IsMonadic() {
		t.Fatal("translation is not monadic")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := tree.RandomBinary(rng, 3+rng.Intn(16), []string{"a", "b"}, []string{"a", "b"})
		run, err := a.Run(tr, RunOptions{})
		if err != nil {
			return false
		}
		res, err := eval.LinearTree(prog, tr)
		if err != nil {
			t.Logf("linear eval: %v", err)
			return false
		}
		return fmt.Sprint(res.UnarySet("query")) == fmt.Sprint(run.Selected)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestExample421Steps verifies the superpolynomial run length of the
// A_β family: the engine's step count matches the closed recurrence
// steps(d) = β·(2 + 2·steps(d-1)), steps(0) = 1.
func TestExample421Steps(t *testing.T) {
	for _, alpha := range []int{1, 2} {
		a := Example421(alpha)
		for depth := 0; depth <= 4; depth++ {
			tr := tree.CompleteBinary(depth, "a")
			run, err := a.Run(tr, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			want := Example421Steps(alpha, depth)
			if run.Steps != want {
				t.Errorf("alpha=%d depth=%d: %d steps, want %d", alpha, depth, run.Steps, want)
			}
			if !run.Accepting {
				t.Errorf("alpha=%d depth=%d: run must accept", alpha, depth)
			}
		}
	}
	// The separation: at depth d the step count grows like
	// n·((n+1)/2)^α, superlinear in the tree size n = 2^(d+1)-1.
	a1 := Example421(1)
	s3, _ := a1.Run(tree.CompleteBinary(3, "a"), RunOptions{})
	s4, _ := a1.Run(tree.CompleteBinary(4, "a"), RunOptions{})
	n3, n4 := 15.0, 31.0
	if float64(s4.Steps)/float64(s3.Steps) <= n4/n3 {
		t.Errorf("steps must grow superlinearly: %d -> %d", s3.Steps, s4.Steps)
	}
}

// TestExample421DatalogLinear: the datalog translation of A_β answers
// the same (empty) query and, unlike the direct run, touches each node
// a bounded number of times.
func TestExample421DatalogLinear(t *testing.T) {
	a := Example421(1)
	prog := a.ToDatalog("query")
	tr := tree.CompleteBinary(5, "a")
	res, err := eval.LinearTree(prog, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UnarySet("query")) != 0 {
		t.Error("A_β selects nothing")
	}
	// Acceptance must still be derived.
	if len(res.UnarySet("accept")) != 1 {
		t.Errorf("accept = %v", res.UnarySet("accept"))
	}
	run, err := a.Run(tr, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !run.Accepting {
		t.Error("direct run must accept")
	}
}

// TestExample415Stages reproduces Figure 2: the stage predicates of
// the down-transition encoding on a node with four children.
func TestExample415Stages(t *testing.T) {
	a := Example415SQAu()
	prog := a.ToDatalog("query")
	tr := tree.MustParse("a(a,a,a,a)")
	res, err := eval.LinearTree(prog, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Stage predicates: tag = q_labelIdx_subexpr with q = 0, label a = 0.
	checks := []struct {
		pred string
		want string
	}{
		{"dtw_0_0_1_1", "[4]"},        // (b) wtmp_{q,2,1} marks n4
		{"dtbw_0_0_0", "[1 2 3 4]"},   // (c) bwtmp_{q,1}: all children
		{"dtbw_0_0_1", "[1 2 3]"},     // (c) bwtmp_{q,2}: before w
		{"dtv_0_0_0_1", "[1 3]"},      // (d) vtmp_{q,1,1}
		{"dtv_0_0_0_2", "[2 4]"},      // (d) vtmp_{q,1,2}
		{"dtv_0_0_1_1", "[1 3]"},      // (d) vtmp_{q,2,1}
		{"dtv_0_0_1_2", "[2]"},        // (d) vtmp_{q,2,2}: n4 blocked
		{"dtsucc_0_0_0", "[1 2 3 4]"}, // (e) subexpression 1 succeeds
		{"dtsucc_0_0_1", "[]"},        // (e) subexpression 2 fails
		{"st_0_1", "[1 3]"},           // (f) ⟨q,q1⟩ on n1, n3
		{"st_0_2", "[2 4]"},           // (f) ⟨q,q0⟩ on n2, n4
	}
	for _, c := range checks {
		if got := fmt.Sprint(res.UnarySet(c.pred)); got != c.want {
			t.Errorf("%s = %s, want %s", c.pred, got, c.want)
		}
	}
	// The direct run performs the same down transition.
	run, err := a.Run(tr, RunOptions{KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Trace) != 1 || run.Trace[0].Kind != StepDown {
		t.Fatalf("trace = %v", run.Trace)
	}
	wantAssign := [][2]int{{1, 1}, {2, 2}, {3, 1}, {4, 2}}
	if fmt.Sprint(run.Trace[0].Assigned) != fmt.Sprint(wantAssign) {
		t.Errorf("down assigned %v, want %v", run.Trace[0].Assigned, wantAssign)
	}
}

// TestSQAuParity checks the unranked parity automaton against the
// reference semantics and its Theorem 4.14 datalog translation.
func TestSQAuParity(t *testing.T) {
	a := ParitySQAu("a", "b")
	prog := a.ToDatalog("query")
	if !prog.IsMonadic() {
		t.Fatal("translation is not monadic")
	}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 50; i++ {
		tr := tree.Random(rng, tree.RandomOptions{
			Labels: []string{"a", "b"}, Size: 1 + rng.Intn(25), MaxChildren: 4})
		run, err := a.Run(tr, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !run.Accepting {
			t.Fatalf("parity SQAu must accept on %s", tr)
		}
		want := paperex.EvenASpec(tr)
		if fmt.Sprint(run.Selected) != fmt.Sprint(want) {
			t.Errorf("direct on %s: %v, want %v", tr, run.Selected, want)
		}
		res, err := eval.LinearTree(prog, tr)
		if err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprint(res.UnarySet("query")); got != fmt.Sprint(want) {
			t.Errorf("datalog on %s: %s, want %v", tr, got, want)
		}
	}
}

// TestSQAuStay checks stay transitions (2DFA) directly and through the
// datalog encoding: on a flat tree, the even-position children are
// selected.
func TestSQAuStay(t *testing.T) {
	a := StaySQAu()
	prog := a.ToDatalog("query")
	for m := 1; m <= 7; m++ {
		tr := tree.Flat(m+1, "a")
		run, err := a.Run(tr, RunOptions{KeepTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		if !run.Accepting {
			t.Fatalf("m=%d: must accept", m)
		}
		var want []int
		for i := 0; i < m; i += 2 {
			want = append(want, i+1) // child ids are 1..m
		}
		if fmt.Sprint(run.Selected) != fmt.Sprint(want) {
			t.Errorf("m=%d: direct selected %v, want %v", m, run.Selected, want)
		}
		// A stay step must occur.
		hasStay := false
		for _, st := range run.Trace {
			hasStay = hasStay || st.Kind == StepStay
		}
		if !hasStay {
			t.Errorf("m=%d: no stay transition in trace", m)
		}
		res, err := eval.LinearTree(prog, tr)
		if err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprint(res.UnarySet("query")); got != fmt.Sprint(want) {
			t.Errorf("m=%d: datalog selected %s, want %v", m, got, want)
		}
	}
}

// TestSQAuSingleNode: a single-node tree takes the leaf transition and
// ends in a non-final state for the stay automaton.
func TestSQAuSingleNode(t *testing.T) {
	a := StaySQAu()
	run, err := a.Run(tree.MustParse("a"), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if run.Accepting {
		t.Error("single node must not accept (final state unreachable)")
	}
	if len(run.Selected) != 0 {
		t.Error("no selection without acceptance")
	}
}

func TestUpKeyRoundTrip(t *testing.T) {
	pairs := []SL{{3, "ab"}, {0, "c"}, {12, "x_y"}}
	got := decodeUpKey(UpKey(pairs))
	if fmt.Sprint(got) != fmt.Sprint(pairs) {
		t.Errorf("round trip: %v vs %v", got, pairs)
	}
}

func TestRunMaxSteps(t *testing.T) {
	// An automaton that ping-pongs forever: down then up to a D-state.
	alpha := map[string]int{"a": 2}
	a := NewQAr(1, alpha)
	a.Start = 0
	a.Down[SL{0, "a"}] = true
	a.DeltaDown[SL{0, "a"}] = []State{0, 0}
	a.DeltaLeaf[SL{0, "a"}] = 0 // leaf keeps the D-state: loops forever
	if _, err := a.Run(tree.MustParse("a(a,a)"), RunOptions{MaxSteps: 100}); err == nil {
		t.Error("expected non-termination error")
	}
}

func TestQArString(t *testing.T) {
	a := Example49("a")
	if a.String() == "" || Example421(1).String() == "" {
		t.Error("String must be nonempty")
	}
	s := ParitySQAu("a")
	if s.String() == "" {
		t.Error("SQAu String must be nonempty")
	}
}
