// Query automata (Section 4.3): runs the paper's Example 4.9
// automaton with a full configuration trace, then reproduces the
// Example 4.21 separation — the A_β family takes superpolynomially
// many steps to run directly, while its Theorem 4.11 monadic datalog
// translation, compiled ONCE through the unified API, evaluates in
// linear time on every tree in the series.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	mdlog "mdlog"
	"mdlog/internal/qa"
	"mdlog/internal/tree"
)

func main() {
	// --- Example 4.9 --------------------------------------------------
	a := qa.Example49("a")
	t := tree.MustParse("a(a,a)")
	run, err := a.Run(t, qa.RunOptions{KeepTrace: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Example 4.9: even-a query automaton on the tree a(a,a)")
	fmt.Println("Transitions (the paper's c0 -> c4):")
	for i, st := range run.Trace {
		fmt.Printf("  c%d -> c%d: %-4s at node n%d, assigns %v\n",
			i, i+1, st.Kind, st.Node, st.Assigned)
	}
	fmt.Printf("accepting: %v, selected: %v (all subtrees have an odd number of a's)\n\n",
		run.Accepting, run.Selected)

	// --- Example 4.21 ---------------------------------------------------
	fmt.Println("Example 4.21: A_β runs vs the Theorem 4.11 datalog translation (α=1, β=2)")
	ab := qa.Example421(1)
	prog := ab.ToDatalog("query")
	// Compile once; the plan is reused across the whole depth series.
	cq, err := mdlog.CompileProgram(prog)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	fmt.Printf("automaton: %s; translation: %d monadic datalog rules\n\n", ab, len(prog.Rules))
	fmt.Printf("%5s %7s %12s %12s %12s\n", "depth", "nodes", "QA steps", "QA time", "datalog time")
	for depth := 3; depth <= 8; depth++ {
		ct := tree.CompleteBinary(depth, "a")
		start := time.Now()
		r, err := ab.Run(ct, qa.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		qaTime := time.Since(start)
		start = time.Now()
		if _, err := cq.Select(ctx, ct); err != nil {
			log.Fatal(err)
		}
		dlTime := time.Since(start)
		fmt.Printf("%5d %7d %12d %12s %12s\n", depth, ct.Size(), r.Steps,
			qaTime.Round(time.Microsecond), dlTime.Round(time.Microsecond))
	}
	fmt.Println("\nQA steps grow like n·((n+1)/2)^α; the datalog evaluation stays linear in n.")
}
