// A Lixto-style wrapping session (Sections 1 and 6 of the paper): a
// synthetic product-listing page is wrapped twice — once with a
// hand-written Elog⁻ program, once by simulating the visual
// specification process of Section 6.2 (clicking example nodes and
// letting the system infer and generalize the subelem paths). The
// compiled wrappers then fan out over a batch of fresh pages from the
// same generator through the Runner, demonstrating both the paper's
// robustness argument (wrappers describe the objects of interest, not
// the whole document) and the compile-once/run-many serving shape.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"

	mdlog "mdlog"
	"mdlog/internal/elog"
	"mdlog/internal/html"
	"mdlog/internal/wrap"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	doc := mdlog.ParseHTML(html.ProductListing(rng, 4))
	ctx := context.Background()

	// --- Route 1: hand-written Elog⁻, compiled once -------------------
	src := `
item(x)   :- root(x0), subelem("html.body.table.tr", x0, x).
name(x)   :- item(x0), subelem("td.#text", x0, x), firstsibling(x).
price(x)  :- item(x0), subelem("td.b.#text", x0, x).
status(x) :- item(x0), subelem("td.em.#text", x0, x).
`
	q, err := mdlog.Compile(src, mdlog.LangElog,
		mdlog.WithWrapOptions(mdlog.WrapOptions{KeepText: true}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Hand-written wrapper:")
	fmt.Print(src)
	fmt.Println("\nExtraction from the example page:")
	out, err := q.Wrap(ctx, doc)
	if err != nil {
		log.Fatal(err)
	}
	mustXML(out)

	// --- Route 2: visual specification (Section 6.2) ------------------
	// The "user" clicks the first product row, then a price inside it.
	b := mdlog.NewElogBuilder(doc)
	rowNode, priceNode := -1, -1
	for _, n := range doc.Nodes {
		if n.Label == "tr" && n.Attrs["class"] == "item" && rowNode == -1 {
			rowNode = n.ID
		}
		if n.Label == "b" && priceNode == -1 {
			priceNode = n.ID
		}
	}
	pb := b.DefinePattern("row", elog.RootPattern)
	if err := pb.Click(doc.Nodes[rowNode]); err != nil {
		log.Fatal(err)
	}
	if _, err := pb.Commit(); err != nil {
		log.Fatal(err)
	}
	pb2 := b.DefinePattern("price", "row")
	if err := pb2.Click(doc.Nodes[priceNode]); err != nil {
		log.Fatal(err)
	}
	if _, err := pb2.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nVisually specified wrapper (inferred paths):")
	fmt.Print(b.Program().String())

	// Compile the inferred program once...
	vq, err := mdlog.CompileElog(b.Program(),
		mdlog.WithWrapOptions(mdlog.WrapOptions{KeepText: true}))
	if err != nil {
		log.Fatal(err)
	}
	// ... and fan it out over a batch of new, larger pages.
	docs := make([]*mdlog.Tree, 3)
	for i := range docs {
		docs[i] = mdlog.ParseHTML(html.ProductListing(rng, 6+2*i))
	}
	fmt.Println("\nVisual wrapper fanned out over new pages:")
	for _, res := range (mdlog.Runner{Workers: 3}).WrapAll(ctx, vq, docs) {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		fmt.Printf("<!-- page %d: %d rows extracted -->\n", res.Index, len(res.Assignment["row"]))
		mustXML(res.Output)
	}
	s := vq.Stats()
	fmt.Printf("compiled once (%v), %d runs, cumulative eval %v\n", s.Compile, s.Runs, s.Eval)
}

func mustXML(t *mdlog.Tree) {
	if err := wrap.WriteXML(os.Stdout, t); err != nil {
		log.Fatal(err)
	}
}
