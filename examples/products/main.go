// A Lixto-style wrapping session (Sections 1 and 6 of the paper): a
// synthetic product-listing page is wrapped twice — once with a
// hand-written Elog⁻ program, once by simulating the visual
// specification process of Section 6.2 (clicking example nodes and
// letting the system infer and generalize the subelem paths). Both
// wrappers are then run over a second, larger page from the same
// generator, demonstrating the robustness argument of the paper:
// wrappers describe the objects of interest, not the whole document.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"mdlog/internal/elog"
	"mdlog/internal/html"
	"mdlog/internal/tree"
	"mdlog/internal/wrap"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	page := html.ProductListing(rng, 4)
	doc := html.Parse(page)

	// --- Route 1: hand-written Elog⁻ ---------------------------------
	prog := elog.MustParseProgram(`
item(x)   :- root(x0), subelem("html.body.table.tr", x0, x).
name(x)   :- item(x0), subelem("td.#text", x0, x), firstsibling(x).
price(x)  :- item(x0), subelem("td.b.#text", x0, x).
status(x) :- item(x0), subelem("td.em.#text", x0, x).
`)
	fmt.Println("Hand-written wrapper:")
	fmt.Print(prog.String())
	fmt.Println("\nExtraction from the example page:")
	run(prog, doc)

	// --- Route 2: visual specification (Section 6.2) ------------------
	// The "user" clicks the first product row, then a price inside it.
	b := elog.NewBuilder(doc)
	rowNode, priceNode := -1, -1
	for _, n := range doc.Nodes {
		if n.Label == "tr" && n.Attrs["class"] == "item" && rowNode == -1 {
			rowNode = n.ID
		}
		if n.Label == "b" && priceNode == -1 {
			priceNode = n.ID
		}
	}
	pb := b.DefinePattern("row", elog.RootPattern)
	if err := pb.Click(doc.Nodes[rowNode]); err != nil {
		log.Fatal(err)
	}
	if _, err := pb.Commit(); err != nil {
		log.Fatal(err)
	}
	pb2 := b.DefinePattern("price", "row")
	if err := pb2.Click(doc.Nodes[priceNode]); err != nil {
		log.Fatal(err)
	}
	if _, err := pb2.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nVisually specified wrapper (inferred paths):")
	fmt.Print(b.Program().String())

	// Both run unchanged on a LARGER page with the same layout.
	bigDoc := html.Parse(html.ProductListing(rng, 8))
	fmt.Println("\nVisual wrapper on a new, larger page:")
	run(b.Program(), bigDoc)
}

func run(prog *elog.Program, doc *tree.Tree) {
	w := &wrap.ElogWrapper{Program: prog, Options: wrap.Options{KeepText: true}}
	out, _, err := w.Run(doc)
	if err != nil {
		log.Fatal(err)
	}
	if err := wrap.WriteXML(os.Stdout, out); err != nil {
		log.Fatal(err)
	}
}
