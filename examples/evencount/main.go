// Example 3.2 of the paper, end to end: the monadic datalog program
// that selects the nodes rooting subtrees with an even number of
// "a"-labeled nodes, evaluated with a full T_P fixpoint trace on the
// paper's own 4-node tree, then compiled once through the unified API
// and run over a batch of larger documents with the Theorem 4.2
// engine.
package main

import (
	"context"
	"fmt"
	"log"

	mdlog "mdlog"
	"mdlog/internal/datalog"
	"mdlog/internal/eval"
	"mdlog/internal/paperex"
	"mdlog/internal/tree"
)

func main() {
	p := paperex.EvenAProgram() // Σ = {a}
	fmt.Println("Program (Example 3.2):")
	fmt.Print(p.String())

	t := paperex.Example32Tree()
	fmt.Println("Tree: root n1 with children n2, n3, n4, all labeled a")
	fmt.Print(t.Pretty())

	// The paper's stage-by-stage fixpoint computation of T_P^ω.
	db := eval.TreeDB(t)
	stages, final, err := datalog.TraceEval(p, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFixpoint trace (new facts per T_P application):")
	for i, stage := range stages {
		fmt.Printf("  T^%d_P adds:", i+1)
		for _, a := range stage {
			fmt.Printf(" %s", a)
		}
		fmt.Println()
	}
	fmt.Printf("\nQuery result c0 = %v (the paper derives C0(n1), i.e. node 0)\n",
		final.UnarySet("c0"))

	// The same query compiled ONCE and fanned over several documents
	// via the Theorem 4.2 engine.
	q, err := mdlog.CompileProgram(paperex.EvenAProgram("b")) // Σ = {a, b}
	if err != nil {
		log.Fatal(err)
	}
	docs := []*mdlog.Tree{
		tree.MustParse("a(b(a,a),a(b,a(a)),b)"),
		tree.MustParse("a(a)"),
		tree.MustParse("b(a(a,b),b(b))"),
	}
	ctx := context.Background()
	for _, res := range (mdlog.Runner{}).SelectAll(ctx, q, docs) {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		fmt.Printf("\nDocument %d:\n%s", res.Index, res.Doc.Pretty())
		fmt.Printf("even-a nodes (linear engine): %v\n", res.Nodes)
		fmt.Printf("reference count semantics:    %v\n", paperex.EvenASpec(res.Doc))
	}
}
