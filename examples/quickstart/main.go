// Quickstart: parse an HTML page, compile a three-rule Elog⁻ wrapper
// once, and run it — the minimal end-to-end path through the unified
// API (HTML front end → Compile → Elog⁻ → monadic datalog → TMNF →
// linear-time evaluation → output tree).
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	mdlog "mdlog"
	"mdlog/internal/wrap"
)

const page = `
<html><body>
  <h1>Spring reading list</h1>
  <ul class="books">
    <li><b>The Art of Trees</b> <span>12.50</span></li>
    <li><b>Monadic Tales</b> <span>8.99</span></li>
    <li><b>Datalog at Dawn</b> <span>15.00</span></li>
  </ul>
</body></html>`

const wrapper = `
book(x)  :- root(x0), subelem("html.body.ul.li", x0, x).
title(x) :- book(x0), subelem("b.#text", x0, x).
price(x) :- book(x0), subelem("span.#text", x0, x).
`

func main() {
	doc := mdlog.ParseHTML(page)
	fmt.Println("Document tree:")
	fmt.Print(doc.Pretty())

	// Compile once: Elog⁻ → monadic datalog → TMNF → prepared plan.
	q, err := mdlog.Compile(wrapper, mdlog.LangElog,
		mdlog.WithWrapOptions(mdlog.WrapOptions{KeepText: true}))
	if err != nil {
		log.Fatal(err)
	}

	// Run many (here: once; see examples/products for the fan-out).
	out, assign, err := q.WrapAssign(context.Background(), doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Pattern assignment:")
	for _, pat := range q.ExtractPreds() {
		fmt.Printf("  %-6s -> nodes %v\n", pat, assign[pat])
	}
	fmt.Println("\nExtracted tree:")
	if err := wrap.WriteXML(os.Stdout, out); err != nil {
		log.Fatal(err)
	}

	s := q.Stats()
	fmt.Printf("\ncompiled in %v, evaluated in %v\n", s.Compile, s.Eval)
}
