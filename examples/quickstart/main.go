// Quickstart: parse an HTML page, write a three-rule Elog⁻ wrapper,
// and print the extracted tree — the minimal end-to-end path through
// the library (HTML front end → Elog⁻ → monadic datalog → TMNF →
// linear-time evaluation → output tree).
package main

import (
	"fmt"
	"log"
	"os"

	mdlog "mdlog"
	"mdlog/internal/wrap"
)

const page = `
<html><body>
  <h1>Spring reading list</h1>
  <ul class="books">
    <li><b>The Art of Trees</b> <span>12.50</span></li>
    <li><b>Monadic Tales</b> <span>8.99</span></li>
    <li><b>Datalog at Dawn</b> <span>15.00</span></li>
  </ul>
</body></html>`

const wrapper = `
book(x)  :- root(x0), subelem("html.body.ul.li", x0, x).
title(x) :- book(x0), subelem("b.#text", x0, x).
price(x) :- book(x0), subelem("span.#text", x0, x).
`

func main() {
	doc := mdlog.ParseHTML(page)
	fmt.Println("Document tree:")
	fmt.Print(doc.Pretty())

	prog, err := mdlog.ParseElog(wrapper)
	if err != nil {
		log.Fatal(err)
	}
	w := &mdlog.ElogWrapper{Program: prog, Options: wrap.Options{KeepText: true}}
	out, assign, err := w.Run(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Pattern assignment:")
	for _, pat := range prog.Patterns() {
		fmt.Printf("  %-6s -> nodes %v\n", pat, assign[pat])
	}
	fmt.Println("\nExtracted tree:")
	if err := wrap.WriteXML(os.Stdout, out); err != nil {
		log.Fatal(err)
	}
}
