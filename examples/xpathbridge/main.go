// The Section 7 remark made concrete: Core XPath queries are compiled
// into monadic datalog, normalized to TMNF, and evaluated with the
// linear-time engine of Theorem 4.2 — so XPath inherits the
// O(|P|·|dom|) bound. The direct XPath evaluator cross-checks every
// result.
package main

import (
	"fmt"
	"log"

	"mdlog/internal/eval"
	"mdlog/internal/html"
	"mdlog/internal/tmnf"
	"mdlog/internal/xpath"
)

const page = `
<html><body>
<table>
  <tr><td>Espresso</td><td><b>2.20</b></td></tr>
  <tr><td>Cappuccino</td><td><b>3.10</b></td></tr>
  <tr><td>Water</td><td>1.00</td></tr>
</table>
</body></html>`

func main() {
	doc := html.Parse(page)
	queries := []string{
		"//tr/td",
		"//tr[td/b]",                  // rows with a bold price
		"//td[following-sibling::td]", // first column
		"//b/ancestor::tr",            // rows again, bottom-up
		"//tr[not(td/b)]",             // negation: evaluator only
	}
	for _, src := range queries {
		q := xpath.MustParse(src)
		direct := xpath.Select(q, doc)
		fmt.Printf("%-32s -> %v", src, direct)
		prog, err := xpath.ToDatalog(q, "q")
		if err != nil {
			fmt.Printf("   (datalog: %v)\n", err)
			continue
		}
		tp, err := tmnf.Transform(prog)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eval.LinearTree(tp, doc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   datalog/TMNF: %v (%d rules)\n", res.UnarySet("q"), len(tp.Rules))
	}
}
