// The Section 7 remark made concrete: Core XPath queries compile
// through the unified API into monadic datalog, are normalized to
// TMNF, and evaluate with the linear-time engine of Theorem 4.2 — so
// XPath inherits the O(|P|·|dom|) bound. Queries using not(·) fall
// back to the direct evaluator inside the same CompiledQuery
// abstraction; the reference evaluator cross-checks every result.
package main

import (
	"context"
	"fmt"
	"log"

	mdlog "mdlog"
	"mdlog/internal/xpath"
)

const page = `
<html><body>
<table>
  <tr><td>Espresso</td><td><b>2.20</b></td></tr>
  <tr><td>Cappuccino</td><td><b>3.10</b></td></tr>
  <tr><td>Water</td><td>1.00</td></tr>
</table>
</body></html>`

func main() {
	doc := mdlog.ParseHTML(page)
	queries := []string{
		"//tr/td",
		"//tr[td/b]",                  // rows with a bold price
		"//td[following-sibling::td]", // first column
		"//b/ancestor::tr",            // rows again, bottom-up
		"//tr[not(td/b)]",             // negation: direct-evaluator plan
	}
	ctx := context.Background()
	for _, src := range queries {
		q, err := mdlog.Compile(src, mdlog.LangXPath)
		if err != nil {
			log.Fatal(err)
		}
		got, err := q.Select(ctx, doc)
		if err != nil {
			log.Fatal(err)
		}
		// Cross-check against the reference evaluator proper (not the
		// XPathSelect shim, which routes through the same compiled
		// plan and would make the check vacuous).
		xp, err := mdlog.ParseXPath(src)
		if err != nil {
			log.Fatal(err)
		}
		ref := xpath.Select(xp, doc)
		status := "ok"
		if fmt.Sprint(got) != fmt.Sprint(ref) {
			status = fmt.Sprintf("MISMATCH vs reference %v", ref)
		}
		fmt.Printf("%-32s -> %v  (%s, eval %v)\n", src, got, status, q.Stats().Eval)
	}
}
