// Theorem 6.6: Elog⁻Δ is strictly more expressive than MSO. The
// paper's three-rule program with distance tolerances classifies the
// root as "anbn" exactly when its children read aⁿbⁿ — a non-regular
// tree language no MSO query (and hence no monadic datalog program or
// query automaton) can define. The Δ program compiles through the
// unified API like every other language; Compile routes it to the
// native fixpoint evaluator since no datalog plan exists.
package main

import (
	"context"
	"fmt"
	"log"

	mdlog "mdlog"
	"mdlog/internal/elog"
	"mdlog/internal/tree"
)

func main() {
	p := elog.AnBnProgram()
	fmt.Println("The Elog⁻Δ program of Theorem 6.6:")
	fmt.Print(p.String())
	fmt.Println()

	// One compilation, many membership tests.
	q, err := mdlog.CompileElog(p, mdlog.WithQueryPred("anbn"))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	words := []string{"ab", "aabb", "aaabbb", "", "a", "b", "ba", "aab", "abb", "abab", "bbaa"}
	for _, w := range words {
		root := tree.New("r")
		for _, c := range w {
			root.Add(tree.New(string(c)))
		}
		sel, err := q.Select(ctx, tree.NewTree(root))
		if err != nil {
			log.Fatal(err)
		}
		verdict := "rejected"
		if len(sel) == 1 {
			verdict = "ACCEPTED"
		}
		fmt.Printf("  children %-8q -> %s\n", w, verdict)
	}

	fmt.Println("\n{aⁿbⁿ} is not regular, so by Proposition 2.1 no MSO sentence defines it;")
	fmt.Println("the Δ conditions (before with 50%-50% tolerance, notafter, notbefore) are")
	fmt.Println("therefore strictly beyond the MSO-equivalent Elog⁻ kernel.")
}
