// MSO as the expressiveness yardstick (Sections 2 and 4.2): a unary
// MSO query is compiled through the unified API to a deterministic
// bottom-up tree automaton over the firstchild/nextsibling encoding,
// evaluated in linear time, and translated into monadic datalog (the
// constructive Theorem 4.4) which compiles through the same API; all
// three routes — direct MSO semantics, automaton, datalog — agree.
package main

import (
	"context"
	"fmt"
	"log"

	mdlog "mdlog"
	"mdlog/internal/mso"
	"mdlog/internal/tree"
)

func main() {
	// "x has a b-labeled child but is not the root."
	src := "exists y (child(x,y) & label_b(y)) & ~root(x)"
	f, err := mso.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MSO query φ(x) = %s\n\n", f)

	// The unified route: Compile(…, LangMSO) builds the DTA.
	ctx := context.Background()
	cq, err := mdlog.Compile(src, mdlog.LangMSO)
	if err != nil {
		log.Fatal(err)
	}

	// The Theorem 4.4 translation, compiled through the same API.
	q, err := mso.CompileQuery(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Compiled DTA: %d states, %d transitions (alphabet: %v)\n",
		q.C.DTA.NumStates, q.C.DTA.NumTransitions(), q.C.LabelList)
	prog, err := q.ToDatalog([]string{"a", "b"}, "sel")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 4.4 translation: %d monadic datalog rules (Θ↑/Θ↓ types as up_q/ctx_q)\n\n", len(prog.Rules))
	dq, err := mdlog.CompileProgram(prog, mdlog.WithQueryPred("sel"))
	if err != nil {
		log.Fatal(err)
	}

	t := tree.MustParse("a(b(a,b),a(b),b(a(b)))")
	fmt.Println("Document tree:")
	fmt.Print(t.Pretty())

	naive, err := mso.NaiveSelect(f, "x", t)
	if err != nil {
		log.Fatal(err)
	}
	autoSel, err := cq.Select(ctx, t)
	if err != nil {
		log.Fatal(err)
	}
	dlSel, err := dq.Select(ctx, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndirect MSO semantics: %v\n", naive)
	fmt.Printf("tree automaton:       %v\n", autoSel)
	fmt.Printf("monadic datalog:      %v\n", dlSel)

	// A sentence: "every leaf is labeled b" — a regular tree language
	// (Proposition 2.1).
	s, err := mso.CompileSentence(mso.MustParse("forall x (leaf(x) -> label_b(x))"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSentence 'every leaf is b' on the tree: %v\n", s.Accepts(t))
	fmt.Printf("... and on b(b,b):                      %v\n", s.Accepts(tree.MustParse("b(b,b)")))
}
