package mdlog

// Tests for the HTML ingestion fan-out: per-document error isolation
// (a reader failing mid-stream must not abort the batch), wrap
// streaming, and context cancellation semantics.

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"
)

// failingReader yields its prefix, then fails every subsequent Read —
// the shape of a network body dying mid-transfer.
type failingReader struct {
	prefix string
	err    error
	done   bool
}

func (f *failingReader) Read(p []byte) (int, error) {
	if !f.done {
		f.done = true
		n := copy(p, f.prefix)
		return n, nil
	}
	return 0, f.err
}

const streamPage = `<html><body><table>
<tr><td>Espresso</td><td><b>2.20</b></td></tr>
<tr><td>Water</td><td>1.00</td></tr>
</table></body></html>`

func streamQuery(t *testing.T) *CompiledQuery {
	t.Helper()
	q, err := Compile("//td[b]", LangXPath)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestSelectHTMLStreamMidStreamFailure: document 1's reader dies
// mid-stream; documents 0 and 2 must still parse and evaluate, and
// results must arrive in input order.
func TestSelectHTMLStreamMidStreamFailure(t *testing.T) {
	q := streamQuery(t)
	boom := errors.New("connection reset")
	srcs := make(chan io.Reader, 3)
	srcs <- strings.NewReader(streamPage)
	srcs <- &failingReader{prefix: "<html><body><table><tr>", err: boom}
	srcs <- strings.NewReader(streamPage)
	close(srcs)

	var got []SelectResult
	for res := range (Runner{Workers: 2}).SelectHTMLStream(context.Background(), q, srcs) {
		got = append(got, res)
	}
	if len(got) != 3 {
		t.Fatalf("got %d results, want 3", len(got))
	}
	for i, res := range got {
		if res.Index != i {
			t.Errorf("result %d has index %d, want in input order", i, res.Index)
		}
	}
	if got[1].Err == nil || !errors.Is(got[1].Err, boom) {
		t.Errorf("doc 1: want the reader's error, got %v", got[1].Err)
	}
	if got[1].Doc != nil {
		t.Errorf("doc 1: want nil Doc on parse failure, got %v", got[1].Doc)
	}
	for _, i := range []int{0, 2} {
		if got[i].Err != nil {
			t.Fatalf("doc %d: batch aborted by sibling failure: %v", i, got[i].Err)
		}
		if len(got[i].Nodes) != 1 {
			t.Errorf("doc %d: got nodes %v, want exactly one //td[b] match", i, got[i].Nodes)
		}
	}
}

// TestWrapHTMLStreamMidStreamFailure: same isolation contract on the
// wrapping path.
func TestWrapHTMLStreamMidStreamFailure(t *testing.T) {
	q, err := Compile(`
item(x)  :- root(x0), subelem("html.body.table.tr", x0, x).
price(x) :- item(x0), subelem("td.b", x0, x).
`, LangElog, WithWrapOptions(WrapOptions{KeepText: true}))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("read timeout")
	srcs := make(chan io.Reader, 2)
	srcs <- &failingReader{prefix: "<html><body>", err: boom}
	srcs <- strings.NewReader(streamPage)
	close(srcs)

	var got []WrapResult
	for res := range (Runner{Workers: 2}).WrapHTMLStream(context.Background(), q, srcs) {
		got = append(got, res)
	}
	if len(got) != 2 {
		t.Fatalf("got %d results, want 2", len(got))
	}
	if !errors.Is(got[0].Err, boom) {
		t.Errorf("doc 0: want the reader's error, got %v", got[0].Err)
	}
	if got[1].Err != nil {
		t.Fatalf("doc 1: batch aborted by sibling failure: %v", got[1].Err)
	}
	if len(got[1].Assignment["item"]) != 2 {
		t.Errorf("doc 1: assignment %v, want 2 item nodes", got[1].Assignment)
	}
	if got[1].Output == nil {
		t.Error("doc 1: want an output tree")
	}
}

// TestSelectHTMLStreamCancellation: canceling mid-stream marks the
// not-yet-processed documents with ctx.Err() and closes the channel;
// it never deadlocks the consumer.
func TestSelectHTMLStreamCancellation(t *testing.T) {
	q := streamQuery(t)
	ctx, cancel := context.WithCancel(context.Background())
	srcs := make(chan io.Reader)
	go func() {
		defer close(srcs)
		for i := 0; i < 100; i++ {
			select {
			case srcs <- strings.NewReader(streamPage):
			case <-ctx.Done():
				return
			}
		}
	}()
	out := (Runner{Workers: 2}).SelectHTMLStream(ctx, q, srcs)
	first, ok := <-out
	if !ok {
		t.Fatal("stream closed before yielding anything")
	}
	if first.Err != nil {
		t.Fatalf("first document failed: %v", first.Err)
	}
	cancel()
	sawCancel := false
	for res := range out { // must terminate: channel closes after cancel
		if res.Err != nil && errors.Is(res.Err, context.Canceled) {
			sawCancel = true
		}
	}
	_ = sawCancel // cancellation may land after the last accepted doc finished
}
