package mdlog

// The docs gate: every exported identifier of the public façade must
// carry a doc comment. CI runs this as part of `go test`, so an
// undocumented export fails the build, not just a lint report.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestDocComments parses the non-test files of the root package and
// reports every exported top-level identifier (type, function, method,
// const, var) without a doc comment. Grouped const/var declarations
// are covered by their group comment.
func TestDocComments(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["mdlog"]
	if !ok {
		t.Fatalf("root package not found (got %v)", pkgs)
	}
	for fname, f := range pkg.Files {
		if strings.HasSuffix(fname, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedRecv(d) {
					continue
				}
				if d.Doc == nil {
					t.Errorf("%s: exported %s %s lacks a doc comment", fset.Position(d.Pos()), funcKind(d), d.Name.Name)
				}
			case *ast.GenDecl:
				checkGenDecl(t, fset, d)
			}
		}
	}
	hasPkgDoc := false
	for _, f := range pkg.Files {
		if f.Doc != nil {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc {
		t.Error("package mdlog lacks a package doc comment")
	}
}

// exportedRecv reports whether a method's receiver type is exported
// (methods on unexported types are not part of the public surface).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true // plain function
	}
	typ := d.Recv.List[0].Type
	for {
		switch x := typ.(type) {
		case *ast.StarExpr:
			typ = x.X
		case *ast.IndexExpr: // generic receiver
			typ = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// checkGenDecl flags undocumented exported types, consts and vars. A
// doc comment on the grouped declaration covers all its names; a spec
// inside a group may also carry its own.
func checkGenDecl(t *testing.T, fset *token.FileSet, d *ast.GenDecl) {
	if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
		return
	}
	for _, spec := range d.Specs {
		switch sp := spec.(type) {
		case *ast.TypeSpec:
			if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
				t.Errorf("%s: exported type %s lacks a doc comment", fset.Position(sp.Pos()), sp.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range sp.Names {
				if name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
					t.Errorf("%s: exported %s %s lacks a doc comment", fset.Position(sp.Pos()), d.Tok, name.Name)
				}
			}
		}
	}
}
