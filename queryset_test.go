package mdlog

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

// querySetPage is a small product table exercising label tests, child
// navigation and sibling structure across all member languages.
const querySetPage = `<html><body><table>
<tr><td>Espresso</td><td><b>2.20</b></td><td><em>in stock</em></td></tr>
<tr><td>Water</td><td>1.00</td><td><em>out</em></td></tr>
<tr><td>Cake</td><td><b>3.10</b></td><td><em>in stock</em></td></tr>
</table></body></html>`

// querySetSpecs is a mixed-language member pool: XPath, Elog⁻, MSO,
// caterpillar and raw datalog, so sets drawn from it always mix fused
// (linear datalog) and unfused (automaton) members.
func querySetSpecs() []SetSpec {
	return []SetSpec{
		{Name: "xpath-td-b", Source: `//td[b]`, Lang: LangXPath},
		{Name: "elog-prices", Source: `
item(x)  :- root(x0), subelem("html.body.table.tr", x0, x).
price(x) :- item(x0), subelem("td.b", x0, x).
`, Lang: LangElog, Options: []Option{WithQueryPred("price")}},
		{Name: "mso-td-b", Source: `label_td(x) & exists y (child(x,y) & label_b(y))`, Lang: LangMSO},
		{Name: "cat-td", Source: `child*.label_td`, Lang: LangCaterpillar},
		{Name: "dl-rows", Source: `row(X) :- label_tr(X), child(X,Y), label_td(Y). ?- row.`, Lang: LangDatalog},
	}
}

// compileQuerySetMember compiles one spec with an engine/opt override
// appended, so the differential suite can sweep the full matrix.
func compileQuerySetMember(t *testing.T, sp SetSpec, extra ...Option) *CompiledQuery {
	t.Helper()
	q, err := Compile(sp.Source, sp.Lang, append(append([]Option{}, sp.Options...), extra...)...)
	if err != nil {
		t.Fatalf("compiling %s: %v", sp.Name, err)
	}
	return q
}

// assignString renders an assignment deterministically for comparison.
func assignString(a Assignment) string {
	var parts []string
	for _, pred := range sortedKeys(a) {
		parts = append(parts, fmt.Sprintf("%s=%v", pred, a[pred]))
	}
	return strings.Join(parts, " ")
}

func sortedKeys(a Assignment) []string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// TestQuerySetDifferential locks the fusion contract: for every engine
// × optimization level, QuerySet.Run returns bit-identical results to
// the per-query Select/Assign path, for every member of a
// mixed-language set.
func TestQuerySetDifferential(t *testing.T) {
	ctx := context.Background()
	doc := ParseHTML(querySetPage)
	specs := querySetSpecs()
	for _, engine := range []Engine{EngineLinear, EngineSemiNaive, EngineNaive, EngineLIT} {
		for _, lvl := range []OptLevel{OptNone, OptFull} {
			t.Run(fmt.Sprintf("%v-%v", engine, lvl), func(t *testing.T) {
				var members []NamedQuery
				var individual []*CompiledQuery
				for _, sp := range specs {
					members = append(members, NamedQuery{Name: sp.Name,
						Query: compileQuerySetMember(t, sp, WithEngine(engine), WithOptLevel(lvl))})
					individual = append(individual, compileQuerySetMember(t, sp, WithEngine(engine), WithOptLevel(lvl)))
				}
				set, err := NewNamedQuerySet(members...)
				if err != nil {
					t.Fatal(err)
				}
				results := set.Run(ctx, doc)
				if len(results) != len(specs) {
					t.Fatalf("got %d results, want %d", len(results), len(specs))
				}
				for i, res := range results {
					q := individual[i]
					if res.Err != nil {
						// Error isolation: the member's failure must
						// mirror the individual path (e.g. LIT
						// rejecting an out-of-fragment program), and
						// the other members must be unaffected.
						if _, ierr := q.Eval(ctx, doc); ierr == nil || ierr.Error() != res.Err.Error() {
							t.Fatalf("%s: fused err %v, individual err %v", res.Name, res.Err, ierr)
						}
						continue
					}
					if q.QueryPred() != "" {
						ids, err := q.Select(ctx, doc)
						if err != nil {
							t.Fatalf("%s: individual Select: %v", res.Name, err)
						}
						if fmt.Sprint(res.IDs) != fmt.Sprint(ids) {
							t.Errorf("%s: fused IDs %v, individual %v", res.Name, res.IDs, ids)
						}
					}
					a, err := q.Assign(ctx, doc)
					if err != nil {
						t.Fatalf("%s: individual Assign: %v", res.Name, err)
					}
					if assignString(res.Assignment) != assignString(a) {
						t.Errorf("%s: fused assignment %q, individual %q",
							res.Name, assignString(res.Assignment), assignString(a))
					}
				}
			})
		}
	}
}

// TestQuerySetFusesLinearMembers checks the fused pass actually covers
// the datalog-routed members and merges their shared chains.
func TestQuerySetFusesLinearMembers(t *testing.T) {
	set, err := CompileSet(querySetSpecs())
	if err != nil {
		t.Fatal(err)
	}
	// xpath, elog, caterpillar and datalog route through the linear
	// engine; the MSO member runs its automaton unfused.
	if got, want := set.FusedLen(), 4; got != want {
		t.Fatalf("FusedLen = %d, want %d", got, want)
	}
	rep := set.FuseStats()
	if rep.Members != 4 || rep.RulesIn == 0 || rep.RulesOut == 0 {
		t.Fatalf("implausible fuse report: %+v", rep)
	}
	if rep.RulesOut > rep.RulesIn {
		t.Fatalf("fusion grew the program: %+v", rep)
	}
}

// TestQuerySetSharedChainDedup fuses near-identical wrappers and
// requires the shared auxiliary chains to be merged, not just
// concatenated.
func TestQuerySetSharedChainDedup(t *testing.T) {
	mk := func(leaf string) SetSpec {
		return SetSpec{Source: fmt.Sprintf(`
item(x) :- root(x0), subelem("html.body.table.tr", x0, x).
f(x)    :- item(x0), subelem(%q, x0, x).
`, leaf), Lang: LangElog, Options: []Option{WithQueryPred("f")}}
	}
	set, err := CompileSet([]SetSpec{mk("td.b"), mk("td.em"), mk("td.b")})
	if err != nil {
		t.Fatal(err)
	}
	rep := set.FuseStats()
	if rep.MergedPreds == 0 || rep.MergedRules == 0 {
		t.Fatalf("expected shared-chain merging, got %+v", rep)
	}
	// The three members share the item chain (and two are identical),
	// so the fused program must be well under the concatenated size.
	if rep.RulesOut*2 > rep.RulesIn {
		t.Fatalf("weak dedup: %+v", rep)
	}
	// And the duplicate third member must still answer independently.
	doc := ParseHTML(querySetPage)
	results := set.Run(context.Background(), doc)
	if fmt.Sprint(results[0].IDs) != fmt.Sprint(results[2].IDs) {
		t.Fatalf("identical members disagree: %v vs %v", results[0].IDs, results[2].IDs)
	}
	if fmt.Sprint(results[0].IDs) == fmt.Sprint(results[1].IDs) {
		t.Fatalf("distinct members agree unexpectedly: %v", results[0].IDs)
	}
}

// TestQuerySetNoQueryPredMember: a member without a distinguished
// query predicate gets nil IDs but a populated assignment — matching
// the individual Select (error) / Assign (works) contract.
func TestQuerySetNoQueryPredMember(t *testing.T) {
	set, err := CompileSet([]SetSpec{
		{Name: "multi", Source: `
a(X) :- label_td(X).
b(X) :- label_em(X).
`, Lang: LangDatalog},
		{Name: "xp", Source: `//td`, Lang: LangXPath},
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := ParseHTML(querySetPage)
	results := set.Run(context.Background(), doc)
	if results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("unexpected errors: %v, %v", results[0].Err, results[1].Err)
	}
	if results[0].IDs != nil {
		t.Fatalf("member without query predicate got IDs %v", results[0].IDs)
	}
	if len(results[0].Assignment["a"]) == 0 {
		t.Fatalf("assignment missing: %v", results[0].Assignment)
	}
}

// TestQuerySetMemoHit: the second Run on the same document must be
// served from the fused result memo.
func TestQuerySetMemoHit(t *testing.T) {
	set, err := CompileSet([]SetSpec{
		{Source: `//td[b]`, Lang: LangXPath},
		{Source: `//td`, Lang: LangXPath},
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := ParseHTML(querySetPage)
	ctx := context.Background()
	first := set.Run(ctx, doc)
	second := set.Run(ctx, doc)
	for i := range first {
		if fmt.Sprint(first[i].IDs) != fmt.Sprint(second[i].IDs) {
			t.Fatalf("memoized run diverges: %v vs %v", first[i].IDs, second[i].IDs)
		}
	}
	if second[0].Stats.CacheHits == 0 {
		t.Fatalf("second run not served from memo: %+v", second[0].Stats)
	}
	if st := set.Stats(); st.Runs != 2 || st.CacheHits == 0 {
		t.Fatalf("set aggregate: %+v", st)
	}
}

// TestQuerySetFusedRunsStats: fused members record FusedRuns on their
// own aggregates (the counter /stats and /metrics surface per
// wrapper).
func TestQuerySetFusedRunsStats(t *testing.T) {
	q1 := mustCompileQS(t, `//td[b]`, LangXPath)
	q2 := mustCompileQS(t, `//td`, LangXPath)
	set, err := NewQuerySet(q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	doc := ParseHTML(querySetPage)
	set.Run(context.Background(), doc)
	if st := q1.Stats(); st.FusedRuns != 1 || st.Runs != 1 {
		t.Fatalf("q1 stats: %+v", st)
	}
	// An individual run afterwards must not count as fused.
	if _, err := q1.Select(context.Background(), doc); err != nil {
		t.Fatal(err)
	}
	if st := q1.Stats(); st.FusedRuns != 1 || st.Runs != 2 {
		t.Fatalf("q1 stats after individual run: %+v", st)
	}
}

func mustCompileQS(t *testing.T, src string, lang Language, opts ...Option) *CompiledQuery {
	t.Helper()
	q, err := Compile(src, lang, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestRunnerSetAll: the Runner fan-out preserves order and per-member
// results, race-clean under -race.
func TestRunnerSetAll(t *testing.T) {
	set, err := CompileSet(querySetSpecs())
	if err != nil {
		t.Fatal(err)
	}
	docs := make([]*Tree, 16)
	for i := range docs {
		docs[i] = ParseHTML(querySetPage)
	}
	res := (Runner{Workers: 8}).SetAll(context.Background(), set, docs)
	if len(res) != len(docs) {
		t.Fatalf("got %d results", len(res))
	}
	want := set.Run(context.Background(), docs[0])
	for _, dr := range res {
		if dr.Err != nil {
			t.Fatalf("doc %d: %v", dr.Index, dr.Err)
		}
		for i, r := range dr.Results {
			if r.Err != nil {
				t.Fatalf("doc %d member %s: %v", dr.Index, r.Name, r.Err)
			}
			if fmt.Sprint(r.IDs) != fmt.Sprint(want[i].IDs) {
				t.Fatalf("doc %d member %s: %v, want %v", dr.Index, r.Name, r.IDs, want[i].IDs)
			}
		}
	}
}

// TestRunnerSetHTMLStream: a failing reader marks only its own
// document; the other documents still parse and evaluate every
// member.
func TestRunnerSetHTMLStream(t *testing.T) {
	set, err := CompileSet([]SetSpec{
		{Source: `//td[b]`, Lang: LangXPath},
		{Source: `//em`, Lang: LangXPath},
	})
	if err != nil {
		t.Fatal(err)
	}
	srcs := make(chan io.Reader, 3)
	srcs <- strings.NewReader(querySetPage)
	srcs <- &failingReader{prefix: "<html><td>", err: fmt.Errorf("stream cut")}
	srcs <- strings.NewReader(querySetPage)
	close(srcs)
	var got []SetDocResult
	for res := range (Runner{Workers: 2}).SetHTMLStream(context.Background(), set, srcs) {
		got = append(got, res)
	}
	if len(got) != 3 {
		t.Fatalf("got %d results", len(got))
	}
	if got[1].Err == nil || got[1].Results != nil {
		t.Fatalf("failing document not isolated: %+v", got[1])
	}
	for _, i := range []int{0, 2} {
		if got[i].Err != nil {
			t.Fatalf("doc %d: %v", i, got[i].Err)
		}
		if len(got[i].Results) != 2 || got[i].Results[0].Err != nil {
			t.Fatalf("doc %d results: %+v", i, got[i].Results)
		}
		if len(got[i].Results[0].IDs) == 0 || len(got[i].Results[1].IDs) == 0 {
			t.Fatalf("doc %d selected nothing: %+v", i, got[i].Results)
		}
	}
}

// TestQuerySetConcurrentRun hammers one set from many goroutines (the
// race detector validates the fused memo and atomic stats).
func TestQuerySetConcurrentRun(t *testing.T) {
	set, err := CompileSet(querySetSpecs())
	if err != nil {
		t.Fatal(err)
	}
	second, err := ParseTree("html(body(table(tr(td,td(b)))))")
	if err != nil {
		t.Fatal(err)
	}
	docs := []*Tree{ParseHTML(querySetPage), second}
	want := make([][]SetResult, len(docs))
	for i, d := range docs {
		want[i] = set.Run(context.Background(), d)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				d := r % len(docs)
				got := set.Run(context.Background(), docs[d])
				for i := range got {
					if got[i].Err != nil || fmt.Sprint(got[i].IDs) != fmt.Sprint(want[d][i].IDs) {
						panic(fmt.Sprintf("concurrent divergence on doc %d member %d", d, i))
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestQuerySetForgetCoversUnfusedMembers: the set's cache holds the
// unfused members' memos too, so one Cache().Forget invalidates the
// whole set's state for a document (regression: unfused members used
// to memoize in their own per-query caches, which Forget on the set
// cache never touched).
func TestQuerySetForgetCoversUnfusedMembers(t *testing.T) {
	ctx := context.Background()
	set, err := CompileSet([]SetSpec{
		{Name: "xp", Source: `//td`, Lang: LangXPath},
		{Name: "mso", Source: `label_td(x)`, Lang: LangMSO}, // automaton: unfused
	})
	if err != nil {
		t.Fatal(err)
	}
	if set.FusedLen() != 0 {
		t.Fatalf("FusedLen = %d, want 0 (one linear member is not fused)", set.FusedLen())
	}
	doc := ParseHTML(querySetPage)
	set.Run(ctx, doc)
	second := set.Run(ctx, doc)
	for _, res := range second {
		if res.Stats.CacheHits != 1 {
			t.Fatalf("%s: second run not served from the set cache: %+v", res.Name, res.Stats)
		}
	}
	set.Cache().Forget(doc)
	third := set.Run(ctx, doc)
	for _, res := range third {
		if res.Stats.CacheHits != 0 {
			t.Fatalf("%s: Forget did not clear the member's memo: %+v", res.Name, res.Stats)
		}
	}
}

// TestQuerySetRespectsWithoutCache: a member compiled WithoutCache
// keeps its no-memoization contract inside a set — repeat runs never
// report cache hits, fused or not.
func TestQuerySetRespectsWithoutCache(t *testing.T) {
	ctx := context.Background()
	doc := ParseHTML(querySetPage)
	// Fused pair with one opted-out member: the shared pass must not
	// memoize.
	set, err := CompileSet([]SetSpec{
		{Name: "a", Source: `//td[b]`, Lang: LangXPath, Options: []Option{WithoutCache()}},
		{Name: "b", Source: `//td`, Lang: LangXPath},
	})
	if err != nil {
		t.Fatal(err)
	}
	set.Run(ctx, doc)
	for _, res := range set.Run(ctx, doc) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Stats.CacheHits != 0 {
			t.Fatalf("%s: fused pass memoized despite WithoutCache member: %+v", res.Name, res.Stats)
		}
	}
	// Unfused opted-out member: same contract.
	set2, err := CompileSet([]SetSpec{
		{Name: "mso", Source: `label_td(x)`, Lang: LangMSO, Options: []Option{WithoutCache()}},
		{Name: "xp", Source: `//td`, Lang: LangXPath},
	})
	if err != nil {
		t.Fatal(err)
	}
	set2.Run(ctx, doc)
	second := set2.Run(ctx, doc)
	if second[0].Stats.CacheHits != 0 {
		t.Fatalf("unfused WithoutCache member memoized: %+v", second[0].Stats)
	}
	if second[1].Stats.CacheHits != 1 {
		t.Fatalf("cached member should hit the set memo: %+v", second[1].Stats)
	}
}

// TestQuerySetAggregateFacts: the set-level aggregate accumulates the
// members' result-fact counts (regression: Stats().Facts was always 0).
func TestQuerySetAggregateFacts(t *testing.T) {
	set, err := CompileSet([]SetSpec{
		{Source: `//td`, Lang: LangXPath},
		{Source: `//em`, Lang: LangXPath},
	})
	if err != nil {
		t.Fatal(err)
	}
	set.Run(context.Background(), ParseHTML(querySetPage))
	if st := set.Stats(); st.Facts == 0 {
		t.Fatalf("set aggregate lost the fact counts: %+v", st)
	}
}

// TestQuerySetSubsumption: a member whose query is a semantically
// equal but syntactically different restatement of another's must be
// answered by projection — zero rules of its own in the fused program,
// SubsumedRuns recorded, results identical to running it alone.
func TestQuerySetSubsumption(t *testing.T) {
	ctx := context.Background()
	base := mustCompileQS(t, `q(X) :- firstchild(X,Y), label_td(Y). ?- q.`, LangDatalog)
	// Duplicated join fragment + defensive dom: not α-equivalent, only
	// the containment checker can prove it equal.
	variant := mustCompileQS(t, `q(X) :- dom(X), firstchild(X,Z), label_td(Z), firstchild(X,W), label_td(W). ?- q.`, LangDatalog)
	set, err := NewNamedQuerySet(
		NamedQuery{Name: "base", Query: base},
		NamedQuery{Name: "variant", Query: variant},
	)
	if err != nil {
		t.Fatal(err)
	}
	plans := set.Plans()
	if len(plans) != 2 {
		t.Fatalf("plans: %+v", plans)
	}
	if plans[0].Subsumed || !plans[0].Fused || plans[0].Rules == 0 {
		t.Fatalf("base plan: %+v", plans[0])
	}
	if !plans[1].Subsumed || plans[1].SharedWith != "base" || plans[1].Rules != 0 {
		t.Fatalf("variant plan: %+v", plans[1])
	}
	if plans[0].Class != plans[1].Class {
		t.Fatalf("equivalent members must share a class: %+v", plans)
	}
	if rep := set.FuseStats(); rep.SubsumedPreds != 1 {
		t.Fatalf("fuse report: %+v", rep)
	}

	doc := ParseHTML(querySetPage)
	res := set.Run(ctx, doc)
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
	}
	// Projection answers must match a direct individual evaluation.
	solo := mustCompileQS(t, `q(X) :- dom(X), firstchild(X,Z), label_td(Z), firstchild(X,W), label_td(W). ?- q.`, LangDatalog)
	want, err := solo.Select(ctx, ParseHTML(querySetPage))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res[1].IDs) != fmt.Sprint(want) {
		t.Fatalf("subsumed member answers %v, direct evaluation %v", res[1].IDs, want)
	}
	if fmt.Sprint(res[0].IDs) != fmt.Sprint(res[1].IDs) {
		t.Fatalf("equivalent members disagree: %v vs %v", res[0].IDs, res[1].IDs)
	}
	// Stats: the subsumed member's run is flagged, the representative's
	// is not.
	if st := res[1].Stats; st.SubsumedRuns != 1 || st.FusedRuns != 1 {
		t.Fatalf("variant run stats: %+v", st)
	}
	if st := res[0].Stats; st.SubsumedRuns != 0 {
		t.Fatalf("base run stats: %+v", st)
	}
	if st := variant.Stats(); st.SubsumedRuns != 1 || st.Runs != 1 {
		t.Fatalf("variant lifetime stats: %+v", st)
	}
	if st := base.Stats(); st.SubsumedRuns != 0 || st.Runs != 1 {
		t.Fatalf("base lifetime stats: %+v", st)
	}
}

// TestQuerySetSubsumptionDistinctKeptApart: near-miss members (proper
// containment, not equivalence) must both keep their rules and answer
// independently.
func TestQuerySetSubsumptionDistinctKeptApart(t *testing.T) {
	ctx := context.Background()
	all := mustCompileQS(t, `q(X) :- label_td(X). ?- q.`, LangDatalog)
	some := mustCompileQS(t, `q(X) :- label_td(X), firstchild(X,Y), label_b(Y). ?- q.`, LangDatalog)
	set, err := NewNamedQuerySet(
		NamedQuery{Name: "all", Query: all},
		NamedQuery{Name: "some", Query: some},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range set.Plans() {
		if p.Subsumed {
			t.Fatalf("proper containment wrongly subsumed: %+v", p)
		}
	}
	doc := ParseHTML(querySetPage)
	res := set.Run(ctx, doc)
	if fmt.Sprint(res[0].IDs) == fmt.Sprint(res[1].IDs) {
		t.Fatalf("distinct queries must differ on this page: %v", res[0].IDs)
	}
	for _, r := range res {
		if r.Stats.SubsumedRuns != 0 {
			t.Fatalf("%s: %+v", r.Name, r.Stats)
		}
	}
}
