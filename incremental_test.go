package mdlog

// Differential testing of the live-document path: randomly edited
// documents queried through SelectIncremental / EvalIncremental /
// RunIncremental must match replay-from-scratch — a from-scratch
// evaluation of the canonical live tree, mapped back to arena ids
// through the live preorder. Shares the program/tree generators and
// MDLOG_FUZZ_N / MDLOG_FUZZ_SEED knobs with differential_test.go.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"mdlog/internal/tree"
)

// randomDocEdit applies one random structural or text edit through
// the Document API.
func randomDocEdit(t *testing.T, rng *rand.Rand, doc *Document, labels []string) {
	t.Helper()
	live := doc.Tree().Arena().LivePreorder()
	switch op := rng.Intn(4); {
	case op == 0 && len(live) > 1: // remove a non-root subtree
		if err := doc.RemoveSubtree(int(live[1+rng.Intn(len(live)-1)])); err != nil {
			t.Fatal(err)
		}
	case op <= 2: // insert a small subtree
		sub := tree.New(labels[rng.Intn(len(labels))])
		for i := rng.Intn(3); i > 0; i-- {
			sub.Add(tree.New(labels[rng.Intn(len(labels))]))
		}
		if _, err := doc.InsertSubtree(int(live[rng.Intn(len(live))]), rng.Intn(4), sub); err != nil {
			t.Fatal(err)
		}
	default: // retext (no τ_ur fact changes)
		if err := doc.SetText(int(live[rng.Intn(len(live))]), fmt.Sprintf("t%d", rng.Int())); err != nil {
			t.Fatal(err)
		}
	}
}

// replayUnary is the replay-from-scratch oracle: evaluate p with the
// reference engine on the canonical live tree (as if the document had
// been re-parsed) and map each predicate's extension back to arena
// ids through the live preorder.
func replayUnary(t *testing.T, ctx context.Context, p *Program, doc *Document, preds []string) map[string][]int {
	t.Helper()
	ref, err := evalThrough(ctx, p, doc.Snapshot(), EngineNaive, OptNone, nil)
	if err != nil {
		t.Fatalf("replay oracle: %v\nprogram:\n%s", err, p)
	}
	pre := doc.Tree().Arena().LivePreorder()
	out := make(map[string][]int, len(preds))
	for _, pred := range preds {
		ids := ref.UnarySet(pred)
		mapped := make([]int, len(ids))
		for i, v := range ids {
			mapped[i] = int(pre[v])
		}
		sort.Ints(mapped)
		out[pred] = mapped
	}
	return out
}

// TestIncrementalDifferential fuzzes edit scripts: random programs
// over randomly edited documents, with the incremental results of
// every engine/level arm — plus all-linear and all-bitmap fused
// QuerySets — compared against replay-from-scratch after every edit
// window.
func TestIncrementalDifferential(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(fuzzSeed(t) ^ 0x9e3779b9))
	labels := []string{"a", "b", "c"}
	iters := fuzzIterations(t)/4 + 2
	engines := []Engine{EngineLinear, EngineBitmap, EngineSemiNaive}
	levels := []OptLevel{OptNone, OptFull}

	for i := 0; i < iters; i++ {
		progs := []*Program{randomMonadicProgram(rng), randomMonadicProgram(rng), randomMonadicProgram(rng)}
		p := progs[0]
		preds := p.IntensionalPreds()
		tr := tree.Random(rng, tree.RandomOptions{Labels: labels, Size: 25 + rng.Intn(55), MaxChildren: 5})
		doc := NewDocument(tr)

		// One maintained arm per engine × optimization level, all fed
		// the same edit script.
		type arm struct {
			e   Engine
			lvl OptLevel
			q   *CompiledQuery
		}
		var arms []arm
		for _, e := range engines {
			for _, lvl := range levels {
				q, err := CompileProgram(p.Clone(), WithEngine(e), WithOptLevel(lvl))
				if err != nil {
					t.Fatalf("case %d: compiling %v/%v: %v\nprogram:\n%s", i, e, lvl, err, p)
				}
				arms = append(arms, arm{e, lvl, q})
			}
		}

		// All-linear and all-bitmap fused sets over the same namespace.
		sets := map[Engine]*QuerySet{}
		for _, e := range []Engine{EngineLinear, EngineBitmap} {
			qs := make([]*CompiledQuery, len(progs))
			for j, mp := range progs {
				q, err := CompileProgram(mp.Clone(), WithEngine(e), WithOptLevel(OptFull))
				if err != nil {
					t.Fatalf("case %d: compiling set member %d on %v: %v\nprogram:\n%s", i, j, e, err, mp)
				}
				qs[j] = q
			}
			set, err := NewQuerySet(qs...)
			if err != nil {
				t.Fatalf("case %d: fusing on %v: %v", i, e, err)
			}
			if set.FusedLen() != len(progs) {
				t.Fatalf("case %d: fused %d of %d %v members", i, set.FusedLen(), len(progs), e)
			}
			sets[e] = set
		}

		for step := 0; step < 6; step++ {
			for k := 1 + rng.Intn(2); k > 0; k-- {
				randomDocEdit(t, rng, doc, labels)
			}
			oracle := replayUnary(t, ctx, p, doc, preds)
			for _, a := range arms {
				db, err := a.q.EvalIncremental(ctx, doc)
				if err != nil {
					t.Fatalf("case %d step %d: incremental %v/%v: %v\nprogram:\n%s", i, step, a.e, a.lvl, err, p)
				}
				for _, pred := range preds {
					if got := fmt.Sprint(db.UnarySet(pred)); got != fmt.Sprint(oracle[pred]) {
						t.Fatalf("case %d step %d: incremental %v/%v: %s = %s, replay %v\nprogram:\n%s",
							i, step, a.e, a.lvl, pred, got, oracle[pred], p)
					}
				}
			}
			for e, set := range sets {
				res := set.RunIncremental(ctx, doc)
				for j, r := range res {
					if r.Err != nil {
						t.Fatalf("case %d step %d: fused %v member %d: %v\nprogram:\n%s", i, step, e, j, r.Err, progs[j])
					}
					mo := replayUnary(t, ctx, progs[j], doc, progs[j].IntensionalPreds())
					for _, pred := range progs[j].IntensionalPreds() {
						got, want := r.Assignment[pred], mo[pred]
						if fmt.Sprint(got) != fmt.Sprint(want) && (len(got) > 0 || len(want) > 0) {
							t.Fatalf("case %d step %d: fused %v member %d: %s = %v, replay %v\nprogram:\n%s",
								i, step, e, j, pred, got, want, progs[j])
						}
					}
				}
			}
		}
	}
}

// TestMutationInvalidatesMemo is the arena-staleness regression test:
// a Select that memoized its result must never serve the pre-mutation
// memo after the document changes — the result memo, navigation
// arrays and TreeDB are all keyed by (tree, generation).
func TestMutationInvalidatesMemo(t *testing.T) {
	ctx := context.Background()
	src := `q(X) :- label_new(X). ?- q.`
	for _, e := range []Engine{EngineLinear, EngineBitmap, EngineSemiNaive} {
		t.Run(e.String(), func(t *testing.T) {
			tr := tree.MustParse("a(b(c),d)")
			q, err := Compile(src, LangDatalog, WithEngine(e))
			if err != nil {
				t.Fatal(err)
			}
			ids, err := q.Select(ctx, tr)
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != 0 {
				t.Fatalf("pre-mutation select = %v, want empty", ids)
			}
			a := tr.Arena()
			id, err := a.InsertSubtree(a.NewDelta(), 0, 0, tree.New("new"))
			if err != nil {
				t.Fatal(err)
			}
			ids, err = q.Select(ctx, tr)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(ids) != fmt.Sprint([]int32{id}) {
				t.Fatalf("post-mutation select = %v, want [%d] (stale memo?)", ids, id)
			}
			if err := a.RemoveSubtree(a.NewDelta(), id); err != nil {
				t.Fatal(err)
			}
			ids, err = q.Select(ctx, tr)
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != 0 {
				t.Fatalf("post-removal select = %v, want empty (stale memo?)", ids)
			}
		})
	}

	t.Run("fused-set", func(t *testing.T) {
		tr := tree.MustParse("a(b(c),d)")
		q1, err := Compile(src, LangDatalog, WithEngine(EngineBitmap))
		if err != nil {
			t.Fatal(err)
		}
		q2, err := Compile(`q(X) :- leaf(X). ?- q.`, LangDatalog, WithEngine(EngineBitmap))
		if err != nil {
			t.Fatal(err)
		}
		set, err := NewQuerySet(q1, q2)
		if err != nil {
			t.Fatal(err)
		}
		res := set.Run(ctx, tr)
		if len(res[0].IDs) != 0 || res[0].Err != nil || res[1].Err != nil {
			t.Fatalf("pre-mutation set run: %+v", res)
		}
		a := tr.Arena()
		id, err := a.InsertSubtree(a.NewDelta(), 0, 2, tree.New("new"))
		if err != nil {
			t.Fatal(err)
		}
		res = set.Run(ctx, tr)
		if res[0].Err != nil || fmt.Sprint(res[0].IDs) != fmt.Sprint([]int32{id}) {
			t.Fatalf("post-mutation fused member = %v (err %v), want [%d] (stale memo?)", res[0].IDs, res[0].Err, id)
		}
		// The new leaf must also appear in the second member's result.
		found := false
		for _, v := range res[1].IDs {
			if v == int(id) {
				found = true
			}
		}
		if !found {
			t.Fatalf("post-mutation leaf member = %v, missing new node %d (stale memo?)", res[1].IDs, id)
		}
	})
}
