package mdlog_test

// Benchmark twin of the EXT-QUERYSET experiment: it measures the
// identical wrapper fleet experiments.QuerySetFamily builds, so the
// `go test -bench` numbers and the benchtables -queryset JSON stay
// comparable. Lives in the external test package because
// internal/experiments imports mdlog.

import (
	"context"
	"math/rand"
	"testing"

	mdlog "mdlog"
	"mdlog/internal/experiments"
	"mdlog/internal/html"
)

// BenchmarkQuerySetFused compares N wrappers evaluated sequentially
// against one fused QuerySet pass on the same document (benchtables
// -queryset measures the same fleets across N ∈ {2, 8, 32}).
func BenchmarkQuerySetFused(b *testing.B) {
	ctx := context.Background()
	doc := mdlog.ParseHTML(html.ProductListing(rand.New(rand.NewSource(7)), 200))
	specs := experiments.QuerySetFamily(8)
	var queries []*mdlog.CompiledQuery
	for _, sp := range specs {
		q, err := mdlog.Compile(sp.Source, sp.Lang, append(sp.Options, mdlog.WithoutCache())...)
		if err != nil {
			b.Fatal(err)
		}
		queries = append(queries, q)
	}
	set, err := mdlog.CompileSet(specs)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				if _, err := q.Assign(ctx, doc); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			set.Cache().Forget(doc)
			for _, res := range set.Run(ctx, doc) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
	})
}
