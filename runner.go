package mdlog

// Runner fans a CompiledQuery (or a whole wrapper) across many
// documents with a bounded worker pool — the serving shape of
// "A Formal Comparison of Visual Web Wrapper Generators": one wrapper
// compiled once, a stream of pages pushed through it. Results always
// come back in input order, so downstream consumers need no
// re-sequencing.

import (
	"context"
	"io"

	"mdlog/internal/eval"
	"mdlog/internal/html"
	"mdlog/internal/tree"
)

// Runner is a bounded worker pool for running compiled queries over
// document collections and streams. The zero value uses
// runtime.GOMAXPROCS(0) workers.
type Runner struct {
	// Workers bounds concurrency; ≤ 0 means GOMAXPROCS.
	Workers int
}

// SelectResult is one document's Select outcome.
type SelectResult struct {
	// Index is the document's position in the input order.
	Index int
	Doc   *Tree
	Nodes []int
	Err   error
}

// EvalResult is one document's Eval outcome. DB may be shared with
// the query's result memo — treat it as read-only (see
// CompiledQuery.Eval).
type EvalResult struct {
	Index int
	Doc   *Tree
	DB    *Database
	Err   error
}

// WrapResult is one document's Wrap outcome.
type WrapResult struct {
	Index      int
	Doc        *Tree
	Output     *Tree
	Assignment Assignment
	Err        error
}

// SpanDocResult is one document's Spans outcome (spanner queries).
type SpanDocResult struct {
	// Index is the document's position in the input order.
	Index int
	Doc   *Tree
	// Spans holds the extracted span relations; nil when Err is set.
	Spans SpanResult
	Err   error
}

// SetDocResult is one document's QuerySet outcome: a SetResult per
// member in set order, plus a document-level error (a failed parse on
// the HTML paths, or a canceled context) that preempted evaluation.
type SetDocResult struct {
	// Index is the document's position in the input order.
	Index int
	Doc   *Tree
	// Results holds one entry per set member; nil when Err is set.
	Results []SetResult
	// Err is a document-level failure; member-level failures live in
	// Results[i].Err.
	Err error
}

func (r Runner) pool() eval.Runner { return eval.Runner{Workers: r.Workers} }

// SetAll runs s.Run — every member wrapper, fused where possible —
// over every document concurrently, returning per-document results in
// input order.
func (r Runner) SetAll(ctx context.Context, s *QuerySet, docs []*Tree) []SetDocResult {
	res := eval.MapAll(ctx, r.pool(), docs, func(ctx context.Context, t *tree.Tree) ([]SetResult, error) {
		return s.Run(ctx, t), nil
	})
	out := make([]SetDocResult, len(res))
	for i, x := range res {
		out[i] = SetDocResult{Index: x.Index, Doc: x.Doc, Results: x.Value, Err: x.Err}
	}
	return out
}

// SetStream runs s.Run over a stream of documents, yielding results in
// input order (see SelectStream for channel semantics).
func (r Runner) SetStream(ctx context.Context, s *QuerySet, docs <-chan *Tree) <-chan SetDocResult {
	res := eval.MapStream(ctx, r.pool(), docs, func(ctx context.Context, t *tree.Tree) ([]SetResult, error) {
		return s.Run(ctx, t), nil
	})
	out := make(chan SetDocResult)
	go func() {
		defer close(out)
		for x := range res {
			out <- SetDocResult{Index: x.Index, Doc: x.Doc, Results: x.Value, Err: x.Err}
		}
	}()
	return out
}

// SetHTMLStream is SetStream for raw HTML: each document is parsed
// from its reader inside the worker pool, then run through every
// member of the set with one shared fused pass. Error semantics are
// those of SelectHTMLStream — a failing reader marks only its own
// document (Err set, Results nil), a canceled context stops the
// stream — with the extra layer that a member's evaluation failure
// lands in its own SetResult, not the document's Err.
func (r Runner) SetHTMLStream(ctx context.Context, s *QuerySet, srcs <-chan io.Reader) <-chan SetDocResult {
	type parsed struct {
		doc     *Tree
		results []SetResult
	}
	res := eval.MapStreamFrom(ctx, r.pool(), srcs, func(ctx context.Context, rd io.Reader) (parsed, error) {
		doc, err := html.ParseReader(rd)
		if err != nil {
			return parsed{}, err
		}
		return parsed{doc: doc, results: s.Run(ctx, doc)}, nil
	}, nil)
	out := make(chan SetDocResult)
	go func() {
		defer close(out)
		for x := range res {
			out <- SetDocResult{Index: x.Index, Doc: x.Value.doc, Results: x.Value.results, Err: x.Err}
		}
	}()
	return out
}

// SpansAll runs q.Spans — a spanner query's span extraction — over
// every document concurrently, returning per-document results in
// input order. Every result carries the same error when q is not a
// spanner query.
func (r Runner) SpansAll(ctx context.Context, q *CompiledQuery, docs []*Tree) []SpanDocResult {
	res := eval.MapAll(ctx, r.pool(), docs, func(ctx context.Context, t *tree.Tree) (SpanResult, error) {
		return q.Spans(ctx, t)
	})
	out := make([]SpanDocResult, len(res))
	for i, x := range res {
		out[i] = SpanDocResult{Index: x.Index, Doc: x.Doc, Spans: x.Value, Err: x.Err}
	}
	return out
}

// SpansStream runs q.Spans over a stream of documents, yielding
// results in input order (see SelectStream for channel semantics).
func (r Runner) SpansStream(ctx context.Context, q *CompiledQuery, docs <-chan *Tree) <-chan SpanDocResult {
	res := eval.MapStream(ctx, r.pool(), docs, func(ctx context.Context, t *tree.Tree) (SpanResult, error) {
		return q.Spans(ctx, t)
	})
	out := make(chan SpanDocResult)
	go func() {
		defer close(out)
		for x := range res {
			out <- SpanDocResult{Index: x.Index, Doc: x.Doc, Spans: x.Value, Err: x.Err}
		}
	}()
	return out
}

// SpansHTMLStream is SpansStream for raw HTML: each document is
// parsed from its reader inside the worker pool, then run through
// q.Spans. Error semantics are those of SelectHTMLStream: a failing
// reader marks only its own result, a canceled context stops the
// stream.
func (r Runner) SpansHTMLStream(ctx context.Context, q *CompiledQuery, srcs <-chan io.Reader) <-chan SpanDocResult {
	type parsed struct {
		doc   *Tree
		spans SpanResult
	}
	res := eval.MapStreamFrom(ctx, r.pool(), srcs, func(ctx context.Context, rd io.Reader) (parsed, error) {
		doc, err := html.ParseReader(rd)
		if err != nil {
			return parsed{}, err
		}
		spans, err := q.Spans(ctx, doc)
		return parsed{doc: doc, spans: spans}, err
	}, nil)
	out := make(chan SpanDocResult)
	go func() {
		defer close(out)
		for x := range res {
			out <- SpanDocResult{Index: x.Index, Doc: x.Value.doc, Spans: x.Value.spans, Err: x.Err}
		}
	}()
	return out
}

// SelectAll runs q.Select over every document concurrently and
// returns per-document results in input order.
func (r Runner) SelectAll(ctx context.Context, q *CompiledQuery, docs []*Tree) []SelectResult {
	res := eval.MapAll(ctx, r.pool(), docs, func(ctx context.Context, t *tree.Tree) ([]int, error) {
		return q.Select(ctx, t)
	})
	out := make([]SelectResult, len(res))
	for i, x := range res {
		out[i] = SelectResult{Index: x.Index, Doc: x.Doc, Nodes: x.Value, Err: x.Err}
	}
	return out
}

// SelectStream runs q.Select over a stream of documents, yielding
// results in input order with backpressure bounded by the worker
// count. The returned channel closes after docs closes (or the
// context is canceled) and all accepted documents have been yielded.
func (r Runner) SelectStream(ctx context.Context, q *CompiledQuery, docs <-chan *Tree) <-chan SelectResult {
	res := eval.MapStream(ctx, r.pool(), docs, func(ctx context.Context, t *tree.Tree) ([]int, error) {
		return q.Select(ctx, t)
	})
	out := make(chan SelectResult)
	go func() {
		defer close(out)
		for x := range res {
			out <- SelectResult{Index: x.Index, Doc: x.Doc, Nodes: x.Value, Err: x.Err}
		}
	}()
	return out
}

// SelectHTMLStream is SelectStream for raw HTML: each document is
// parsed from its reader inside the worker pool (the streaming arena
// ingestion path), then run through q.Select — so tokenization,
// tree construction and evaluation all fan out together. The result's
// Doc is the parsed tree; a parse (read) error surfaces in Err with a
// nil Doc. Document failures are isolated: a reader that errors
// mid-stream marks only its own result and the remaining documents
// still parse and evaluate. Canceling the context instead stops the
// whole stream — already-accepted, not-yet-processed documents are
// yielded with ctx.Err(). Channel semantics are those of
// SelectStream.
func (r Runner) SelectHTMLStream(ctx context.Context, q *CompiledQuery, srcs <-chan io.Reader) <-chan SelectResult {
	type parsed struct {
		doc   *Tree
		nodes []int
	}
	res := eval.MapStreamFrom(ctx, r.pool(), srcs, func(ctx context.Context, rd io.Reader) (parsed, error) {
		doc, err := html.ParseReader(rd)
		if err != nil {
			return parsed{}, err
		}
		nodes, err := q.Select(ctx, doc)
		return parsed{doc: doc, nodes: nodes}, err
	}, nil)
	out := make(chan SelectResult)
	go func() {
		defer close(out)
		for x := range res {
			out <- SelectResult{Index: x.Index, Doc: x.Value.doc, Nodes: x.Value.nodes, Err: x.Err}
		}
	}()
	return out
}

// WrapHTMLStream is WrapStream for raw HTML: each document is parsed
// from its reader inside the worker pool, then run through
// q.WrapAssign. Error semantics are those of SelectHTMLStream: a
// failing reader marks only its own result, a canceled context stops
// the stream.
func (r Runner) WrapHTMLStream(ctx context.Context, q *CompiledQuery, srcs <-chan io.Reader) <-chan WrapResult {
	type parsed struct {
		doc    *Tree
		out    *Tree
		assign Assignment
	}
	res := eval.MapStreamFrom(ctx, r.pool(), srcs, func(ctx context.Context, rd io.Reader) (parsed, error) {
		doc, err := html.ParseReader(rd)
		if err != nil {
			return parsed{}, err
		}
		out, a, err := q.WrapAssign(ctx, doc)
		return parsed{doc: doc, out: out, assign: a}, err
	}, nil)
	out := make(chan WrapResult)
	go func() {
		defer close(out)
		for x := range res {
			out <- WrapResult{Index: x.Index, Doc: x.Value.doc, Output: x.Value.out, Assignment: x.Value.assign, Err: x.Err}
		}
	}()
	return out
}

// AssignHTMLStream is WrapHTMLStream without output-tree
// construction: each document is parsed inside the worker pool and
// run through q.Assign, so consumers that only serialize the pattern
// → nodes assignment skip the tree build entirely. Results carry a
// nil Output; error semantics are those of SelectHTMLStream.
func (r Runner) AssignHTMLStream(ctx context.Context, q *CompiledQuery, srcs <-chan io.Reader) <-chan WrapResult {
	type parsed struct {
		doc    *Tree
		assign Assignment
	}
	res := eval.MapStreamFrom(ctx, r.pool(), srcs, func(ctx context.Context, rd io.Reader) (parsed, error) {
		doc, err := html.ParseReader(rd)
		if err != nil {
			return parsed{}, err
		}
		a, err := q.Assign(ctx, doc)
		return parsed{doc: doc, assign: a}, err
	}, nil)
	out := make(chan WrapResult)
	go func() {
		defer close(out)
		for x := range res {
			out <- WrapResult{Index: x.Index, Doc: x.Value.doc, Assignment: x.Value.assign, Err: x.Err}
		}
	}()
	return out
}

// EvalAll runs q.Eval over every document concurrently, in input order.
func (r Runner) EvalAll(ctx context.Context, q *CompiledQuery, docs []*Tree) []EvalResult {
	res := eval.MapAll(ctx, r.pool(), docs, func(ctx context.Context, t *tree.Tree) (*Database, error) {
		return q.Eval(ctx, t)
	})
	out := make([]EvalResult, len(res))
	for i, x := range res {
		out[i] = EvalResult{Index: x.Index, Doc: x.Doc, DB: x.Value, Err: x.Err}
	}
	return out
}

type wrapped struct {
	out    *tree.Tree
	assign Assignment
}

// WrapAll runs q.Wrap over every document concurrently, in input order.
func (r Runner) WrapAll(ctx context.Context, q *CompiledQuery, docs []*Tree) []WrapResult {
	res := eval.MapAll(ctx, r.pool(), docs, func(ctx context.Context, t *tree.Tree) (wrapped, error) {
		out, a, err := q.WrapAssign(ctx, t)
		return wrapped{out, a}, err
	})
	return wrapResults(res)
}

// WrapStream runs q.Wrap over a stream of documents, yielding results
// in input order (see SelectStream for channel semantics).
func (r Runner) WrapStream(ctx context.Context, q *CompiledQuery, docs <-chan *Tree) <-chan WrapResult {
	res := eval.MapStream(ctx, r.pool(), docs, func(ctx context.Context, t *tree.Tree) (wrapped, error) {
		out, a, err := q.WrapAssign(ctx, t)
		return wrapped{out, a}, err
	})
	out := make(chan WrapResult)
	go func() {
		defer close(out)
		for x := range res {
			out <- WrapResult{Index: x.Index, Doc: x.Doc, Output: x.Value.out, Assignment: x.Value.assign, Err: x.Err}
		}
	}()
	return out
}

// RunWrapper fans a legacy datalog Wrapper over every document.
func (r Runner) RunWrapper(ctx context.Context, w *Wrapper, docs []*Tree) []WrapResult {
	res := eval.MapAll(ctx, r.pool(), docs, func(_ context.Context, t *tree.Tree) (wrapped, error) {
		out, a, err := w.Run(t)
		return wrapped{out, a}, err
	})
	return wrapResults(res)
}

// RunElogWrapper fans a legacy ElogWrapper over every document.
func (r Runner) RunElogWrapper(ctx context.Context, w *ElogWrapper, docs []*Tree) []WrapResult {
	res := eval.MapAll(ctx, r.pool(), docs, func(_ context.Context, t *tree.Tree) (wrapped, error) {
		out, a, err := w.Run(t)
		return wrapped{out, a}, err
	})
	return wrapResults(res)
}

func wrapResults(res []eval.Result[wrapped]) []WrapResult {
	out := make([]WrapResult, len(res))
	for i, x := range res {
		out[i] = WrapResult{Index: x.Index, Doc: x.Doc, Output: x.Value.out, Assignment: x.Value.assign, Err: x.Err}
	}
	return out
}
