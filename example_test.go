package mdlog_test

// Runnable godoc examples for the façade; `go test` executes them, so
// every Output comment is CI-verified documentation.

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"

	mdlog "mdlog"
)

const examplePage = `<html><body><table>
<tr><td>Espresso</td><td><b>2.20</b></td></tr>
<tr><td>Water</td><td>1.00</td></tr>
</table></body></html>`

// The quickstart: parse a document, compile a query once, run it.
func Example() {
	doc := mdlog.ParseHTML(examplePage)

	q, err := mdlog.Compile("//td[b]", mdlog.LangXPath)
	if err != nil {
		log.Fatal(err)
	}
	ids, err := q.Select(context.Background(), doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ids)
	// Output: [7]
}

// The paper's equivalence, executable: the same query compiled from
// four formalisms selects the same nodes.
func ExampleCompile() {
	doc := mdlog.ParseHTML(examplePage)
	for _, src := range []struct {
		lang mdlog.Language
		text string
	}{
		{mdlog.LangDatalog, `q(X) :- label_td(X), child(X,Y), label_b(Y). ?- q.`},
		{mdlog.LangMSO, `label_td(x) & exists y (child(x,y) & label_b(y))`},
		{mdlog.LangXPath, `//td[b]`},
		{mdlog.LangCaterpillar, `child*.label_td.child.label_b.(child^-1).label_td`},
	} {
		q, err := mdlog.Compile(src.text, src.lang)
		if err != nil {
			log.Fatal(err)
		}
		ids, err := q.Select(context.Background(), doc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %v\n", q.Language(), ids)
	}
	// Output:
	// datalog     [7]
	// mso         [7]
	// xpath       [7]
	// caterpillar [7]
}

// An Elog⁻ wrapper (Section 6): extraction patterns become the node
// assignment and the relabeled output tree.
func ExampleCompiledQuery_WrapAssign() {
	q, err := mdlog.Compile(`
item(x)  :- root(x0), subelem("html.body.table.tr", x0, x).
price(x) :- item(x0), subelem("td.b", x0, x).
`, mdlog.LangElog, mdlog.WithWrapOptions(mdlog.WrapOptions{KeepText: true}))
	if err != nil {
		log.Fatal(err)
	}
	doc := mdlog.ParseHTML(examplePage)
	_, assign, err := q.WrapAssign(context.Background(), doc)
	if err != nil {
		log.Fatal(err)
	}
	patterns := make([]string, 0, len(assign))
	for pat := range assign {
		patterns = append(patterns, pat)
	}
	sort.Strings(patterns)
	for _, pat := range patterns {
		fmt.Printf("%s: %d node(s)\n", pat, len(assign[pat]))
	}
	// Output:
	// item: 2 node(s)
	// price: 1 node(s)
}

// Streaming ingestion: parse from any io.Reader — one tokenizer pass
// builds the arena representation the engines index directly.
func ExampleParseHTMLReader() {
	doc, err := mdlog.ParseHTMLReader(strings.NewReader(examplePage))
	if err != nil {
		log.Fatal(err) // only a read error; malformed HTML never fails
	}
	q, err := mdlog.Compile(`q(X) :- label_b(X). ?- q.`, mdlog.LangDatalog)
	if err != nil {
		log.Fatal(err)
	}
	ids, err := q.Select(context.Background(), doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(ids))
	// Output: 1
}

// One wrapper, many pages: the Runner fans a compiled query over a
// document collection with a bounded worker pool, results in input
// order.
func ExampleRunner() {
	q, err := mdlog.Compile("//td[b]", mdlog.LangXPath)
	if err != nil {
		log.Fatal(err)
	}
	docs := []*mdlog.Tree{
		mdlog.ParseHTML(examplePage),
		mdlog.ParseHTML(`<html><body><table><tr><td><b>9.99</b></td></tr></table></body></html>`),
	}
	for _, res := range (mdlog.Runner{Workers: 2}).SelectAll(context.Background(), q, docs) {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		fmt.Printf("doc %d: %d match(es)\n", res.Index, len(res.Nodes))
	}
	// Output:
	// doc 0: 1 match(es)
	// doc 1: 1 match(es)
}

// Many wrappers, one page: a QuerySet fuses the datalog-routed members
// (here XPath and Elog⁻) into one shared evaluation pass — the base
// relations are grounded once for the whole fleet — while the MSO
// automaton member runs alongside with identical results.
func ExampleQuerySet() {
	set, err := mdlog.CompileSet([]mdlog.SetSpec{
		{Name: "bold-cells", Source: `//td[b]`, Lang: mdlog.LangXPath},
		{Name: "prices", Source: `
item(x)  :- root(x0), subelem("html.body.table.tr", x0, x).
price(x) :- item(x0), subelem("td.b", x0, x).
`, Lang: mdlog.LangElog, Options: []mdlog.Option{mdlog.WithQueryPred("price")}},
		{Name: "mso-bold", Source: `label_td(x) & exists y (child(x,y) & label_b(y))`,
			Lang: mdlog.LangMSO},
	})
	if err != nil {
		log.Fatal(err)
	}
	doc := mdlog.ParseHTML(examplePage)
	for _, res := range set.Run(context.Background(), doc) {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		fmt.Printf("%-10s %v\n", res.Name, res.IDs)
	}
	fmt.Printf("fused %d of %d wrappers\n", set.FusedLen(), set.Len())
	// Output:
	// bold-cells [7]
	// prices     [8]
	// mso-bold   [7]
	// fused 2 of 3 wrappers
}
