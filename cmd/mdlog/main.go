// Command mdlog compiles a query in any of the paper's formalisms and
// runs it on one or more document trees through the unified
// compile-once/run-many API:
//
//	mdlog -program wrapper.dl -tree 'a(b,c(d))'
//	mdlog -lang xpath -query '//table/tr[td/b]/td' -html page.html
//	mdlog -lang elog -program wrapper.elog -html p1.html -html p2.html
//	mdlog -program wrapper.dl -html page.html -engine seminaive -stats
//
// A datalog program may designate a query predicate with "?- pred.";
// -pred overrides it. With several documents the compiled query fans
// out over a bounded worker pool and results print in input order.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	mdlog "mdlog"
)

type multiFlag []string

func (m *multiFlag) String() string     { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var (
		langArg     = flag.String("lang", "datalog", "query language: datalog, tmnf, mso, xpath, caterpillar, elog")
		programFile = flag.String("program", "", "query source file")
		queryArg    = flag.String("query", "", "query source text (alternative to -program)")
		treeArgs    multiFlag
		treeFiles   multiFlag
		htmlFiles   multiFlag
		engineArg   = flag.String("engine", "linear", "datalog engine: linear, seminaive, naive, lit")
		predArg     = flag.String("pred", "", "query predicate to select (overrides the program's ?- directive)")
		workers     = flag.Int("workers", 0, "worker pool size for multiple documents (0: GOMAXPROCS)")
		showTree    = flag.Bool("print-tree", false, "print each document tree with node ids")
		showStats   = flag.Bool("stats", false, "print compile/run statistics to stderr")
	)
	flag.Var(&treeArgs, "tree", "document in term syntax, e.g. a(b,c); repeatable")
	flag.Var(&treeFiles, "treefile", "file containing a tree in term syntax; repeatable")
	flag.Var(&htmlFiles, "html", "HTML document file; repeatable")
	flag.Parse()

	if *programFile != "" && *queryArg != "" {
		fail("-program and -query are alternatives; provide one")
	}
	src := *queryArg
	if *programFile != "" {
		b, err := os.ReadFile(*programFile)
		if err != nil {
			fail("%v", err)
		}
		src = string(b)
	}
	if src == "" {
		fail("provide -program or -query")
	}
	lang, err := mdlog.ParseLanguage(*langArg)
	if err != nil {
		fail("%v", err)
	}
	engine, err := mdlog.ParseEngineFlag(*engineArg)
	if err != nil {
		fail("%v", err)
	}
	opts := []mdlog.Option{mdlog.WithEngine(engine)}
	if *predArg != "" {
		opts = append(opts, mdlog.WithQueryPred(*predArg))
	}
	q, err := mdlog.Compile(src, lang, opts...)
	if err != nil {
		fail("%v", err)
	}

	docs, err := loadDocs(treeArgs, treeFiles, htmlFiles)
	if err != nil {
		fail("%v", err)
	}
	if len(docs) == 0 {
		fail("provide at least one -tree, -treefile or -html")
	}
	if *showTree {
		for _, d := range docs {
			fmt.Print(d.Pretty())
		}
	}

	ctx := context.Background()
	print := func(prefix string, db *mdlog.Database) {
		preds := q.ExtractPreds()
		if q.QueryPred() != "" {
			preds = []string{q.QueryPred()}
		}
		for _, pred := range preds {
			fmt.Printf("%s%s: %v\n", prefix, pred, db.UnarySet(pred))
		}
	}
	if len(docs) == 1 {
		db, err := q.Eval(ctx, docs[0])
		if err != nil {
			fail("%v", err)
		}
		print("", db)
	} else {
		for _, res := range (mdlog.Runner{Workers: *workers}).EvalAll(ctx, q, docs) {
			if res.Err != nil {
				fail("document %d: %v", res.Index, res.Err)
			}
			print(fmt.Sprintf("[doc %d] ", res.Index), res.DB)
		}
	}
	if *showStats {
		s := q.Stats()
		fmt.Fprintf(os.Stderr, "parse %v, compile %v, materialize %v, eval %v, %d facts over %d runs (%d cache hits)\n",
			s.Parse, s.Compile, s.Materialize, s.Eval, s.Facts, s.Runs, s.CacheHits)
	}
}

func loadDocs(terms, termFiles, htmlFiles []string) ([]*mdlog.Tree, error) {
	var docs []*mdlog.Tree
	for _, s := range terms {
		t, err := mdlog.ParseTree(s)
		if err != nil {
			return nil, err
		}
		docs = append(docs, t)
	}
	for _, f := range termFiles {
		b, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		t, err := mdlog.ParseTree(string(b))
		if err != nil {
			return nil, err
		}
		docs = append(docs, t)
	}
	for _, f := range htmlFiles {
		b, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		docs = append(docs, mdlog.ParseHTML(string(b)))
	}
	return docs, nil
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "mdlog: "+format+"\n", args...)
	os.Exit(1)
}
