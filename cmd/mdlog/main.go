// Command mdlog evaluates a monadic datalog program on a document
// tree with a selectable engine:
//
//	mdlog -program wrapper.dl -tree 'a(b,c(d))' -engine linear
//	mdlog -program wrapper.dl -html page.html -pred item
//
// The program may designate a query predicate with "?- pred."; -pred
// restricts output to one predicate, otherwise all intensional
// predicates are printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"mdlog/internal/datalog"
	"mdlog/internal/eval"
	"mdlog/internal/html"
	"mdlog/internal/tree"
)

func main() {
	var (
		programFile = flag.String("program", "", "datalog program file (required)")
		treeArg     = flag.String("tree", "", "tree in term syntax, e.g. a(b,c)")
		treeFile    = flag.String("treefile", "", "file containing a tree in term syntax")
		htmlFile    = flag.String("html", "", "HTML document file")
		engineArg   = flag.String("engine", "linear", "engine: linear, seminaive, naive, lit")
		predArg     = flag.String("pred", "", "print only this predicate")
		showTree    = flag.Bool("print-tree", false, "print the document tree with node ids")
	)
	flag.Parse()
	if *programFile == "" {
		fail("missing -program")
	}
	src, err := os.ReadFile(*programFile)
	if err != nil {
		fail("%v", err)
	}
	prog, err := datalog.ParseProgram(string(src))
	if err != nil {
		fail("%v", err)
	}
	t, err := loadTree(*treeArg, *treeFile, *htmlFile)
	if err != nil {
		fail("%v", err)
	}
	engine, err := eval.ParseEngine(*engineArg)
	if err != nil {
		fail("%v", err)
	}
	if *showTree {
		fmt.Print(t.Pretty())
	}
	res, err := eval.EvalOnTree(prog, t, engine)
	if err != nil {
		fail("%v", err)
	}
	preds := prog.IntensionalPreds()
	if *predArg != "" {
		preds = []string{*predArg}
	} else if prog.Query != "" {
		preds = []string{prog.Query}
	}
	for _, pred := range preds {
		fmt.Printf("%s: %v\n", pred, res.UnarySet(pred))
	}
}

func loadTree(term, termFile, htmlFile string) (*tree.Tree, error) {
	switch {
	case term != "":
		return tree.Parse(term)
	case termFile != "":
		b, err := os.ReadFile(termFile)
		if err != nil {
			return nil, err
		}
		return tree.Parse(string(b))
	case htmlFile != "":
		b, err := os.ReadFile(htmlFile)
		if err != nil {
			return nil, err
		}
		return html.Parse(string(b)), nil
	}
	return nil, fmt.Errorf("provide -tree, -treefile or -html")
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "mdlog: "+format+"\n", args...)
	os.Exit(1)
}
