// Command mdlog compiles a query in any of the paper's formalisms and
// runs it on one or more document trees through the unified
// compile-once/run-many API:
//
//	mdlog -program wrapper.dl -tree 'a(b,c(d))'
//	mdlog -lang xpath -query '//table/tr[td/b]/td' -html page.html
//	mdlog -lang elog -program wrapper.elog -html p1.html -html p2.html
//	mdlog -lang spanner -program prices.span -html page.html
//	mdlog -program wrapper.dl -html page.html -engine seminaive -stats
//
// With -lang spanner the program combines node rules with span rules
// (text/attr/match atoms); the output is one line per extracted span
// row instead of node-id sets.
//
// A datalog program may designate a query predicate with "?- pred.";
// -pred overrides it. With several documents the compiled query fans
// out over a bounded worker pool and results print in input order.
//
// Multi-program mode: -program and -query repeat. With more than one
// source, all of them (same -lang) compile into one fused QuerySet —
// per document, the base relations are grounded once and shared
// auxiliary chains are evaluated once — and per-wrapper results print
// prefixed with the program name:
//
//	mdlog -program items.elog -program prices.elog -lang elog -html page.html
//
// Watch mode: -watch polls the document files and re-runs the compiled
// extraction whenever one changes (the monitoring workload: compile
// once, extract on every revision):
//
//	mdlog -program wrapper.dl -html page.html -watch
//	mdlog -program wrapper.dl -html page.html -watch -watch-count 3
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	mdlog "mdlog"
	"mdlog/internal/cliflag"
)

type multiFlag []string

func (m *multiFlag) String() string     { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// errFlagParse marks a flag error the FlagSet itself already
// reported on stderr; main exits nonzero without repeating it.
var errFlagParse = errors.New("flag parsing failed")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errFlagParse) {
			fmt.Fprintf(os.Stderr, "mdlog: %v\n", err)
		}
		os.Exit(1)
	}
}

// run is the testable body of the command: flags in, report on stdout,
// statistics on stderr.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mdlog", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		langArg      = fs.String("lang", "datalog", "query language: "+strings.Join(mdlog.LanguageNames(), ", "))
		programFiles multiFlag
		queryArgs    multiFlag
		treeArgs     multiFlag
		treeFiles    multiFlag
		htmlFiles    multiFlag
		engineArg    = cliflag.Engine(fs)
		optArg       = cliflag.OptLevel(fs)
		predArg      = fs.String("pred", "", "query predicate to select (overrides the program's ?- directive)")
		workers      = fs.Int("workers", 0, "worker pool size for multiple documents (0: GOMAXPROCS)")
		showTree     = fs.Bool("print-tree", false, "print each document tree with node ids")
		explainArg   = fs.Bool("explain", false, "print the compile plan (fusion, CSE, subsumption) before extracting")
		showStats    = fs.Bool("stats", false, "print compile/run statistics to stderr")
		watchArg     = fs.Bool("watch", false, "poll the document files and re-extract whenever one changes")
		watchIvl     = fs.Duration("watch-interval", 200*time.Millisecond, "poll interval for -watch")
		watchCount   = fs.Int("watch-count", 0, "with -watch: exit after this many extraction passes (0: run until interrupted)")
	)
	fs.Var(&programFiles, "program", "query source file; repeatable (several fuse into one QuerySet)")
	fs.Var(&queryArgs, "query", "query source text (alternative to -program); repeatable")
	fs.Var(&treeArgs, "tree", "document in term syntax, e.g. a(b,c); repeatable")
	fs.Var(&treeFiles, "treefile", "file containing a tree in term syntax; repeatable")
	fs.Var(&htmlFiles, "html", "HTML document file; repeatable")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage already printed, exit 0
		}
		return errFlagParse // the FlagSet already printed the error + usage
	}

	if len(programFiles) > 0 && len(queryArgs) > 0 {
		return fmt.Errorf("-program and -query are alternatives; provide one kind")
	}
	type source struct{ name, text string }
	var sources []source
	for i, s := range queryArgs {
		sources = append(sources, source{name: fmt.Sprintf("q%d", i), text: s})
	}
	for _, f := range programFiles {
		b, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		sources = append(sources, source{name: progName(f), text: string(b)})
	}
	if len(sources) == 0 {
		return fmt.Errorf("provide -program or -query")
	}
	lang, err := mdlog.ParseLanguage(*langArg)
	if err != nil {
		return err
	}
	engine, err := engineArg()
	if err != nil {
		return err
	}
	optLevel, err := optArg()
	if err != nil {
		return err
	}
	opts := []mdlog.Option{mdlog.WithEngine(engine), mdlog.WithOptLevel(optLevel)}
	if *predArg != "" {
		opts = append(opts, mdlog.WithQueryPred(*predArg))
	}

	ctx := context.Background()

	// Compile once; pass runs the extraction over one batch of
	// documents and finishStats reports the lifetime aggregate —
	// watch mode calls pass once per document revision.
	var pass func(prefix string, docs []*mdlog.Tree) error
	var finishStats func()
	if len(sources) > 1 {
		// Multi-program mode: fuse every source into one QuerySet so
		// each document is grounded once for the whole fleet.
		specs := make([]mdlog.SetSpec, len(sources))
		for i, s := range sources {
			specs[i] = mdlog.SetSpec{Name: s.name, Source: s.text, Lang: lang, Options: opts}
		}
		set, err := mdlog.CompileSet(specs)
		if err != nil {
			return err
		}
		if *explainArg {
			explainSet(stdout, set)
		}
		queries := set.Queries()
		pass = func(prefix string, docs []*mdlog.Tree) error {
			results := (mdlog.Runner{Workers: *workers}).SetAll(ctx, set, docs)
			for _, dr := range results {
				if dr.Err != nil {
					return fmt.Errorf("document %d: %w", dr.Index, dr.Err)
				}
				p := prefix
				if len(docs) > 1 {
					p = fmt.Sprintf("%s[doc %d] ", prefix, dr.Index)
				}
				for _, res := range dr.Results {
					if res.Err != nil {
						return fmt.Errorf("document %d, program %s: %w", dr.Index, res.Name, res.Err)
					}
					q := queries[res.Index]
					if res.Spans != nil {
						printSpans(stdout, p+res.Name+".", res.Spans)
					}
					if q.QueryPred() != "" {
						fmt.Fprintf(stdout, "%s%s: %v\n", p, res.Name, res.IDs)
						continue
					}
					for _, pred := range q.ExtractPreds() {
						fmt.Fprintf(stdout, "%s%s.%s: %v\n", p, res.Name, pred, res.Assignment[pred])
					}
				}
			}
			return nil
		}
		finishStats = func() {
			s := set.Stats()
			rep := set.FuseStats()
			fmt.Fprintf(stderr, "fused %d/%d programs (%d rules -> %d, %d shared preds), materialize %v, eval %v over %d runs (%d cache hits)\n",
				set.FusedLen(), set.Len(), rep.RulesIn, rep.RulesOut, rep.MergedPreds,
				s.Materialize, s.Eval, s.Runs, s.CacheHits)
		}
	} else {
		q, err := mdlog.Compile(sources[0].text, lang, opts...)
		if err != nil {
			return err
		}
		if *explainArg {
			explainQuery(stdout, sources[0].name, q)
		}
		print := func(prefix string, db *mdlog.Database) {
			preds := q.ExtractPreds()
			if q.QueryPred() != "" {
				preds = []string{q.QueryPred()}
			}
			for _, pred := range preds {
				fmt.Fprintf(stdout, "%s%s: %v\n", prefix, pred, db.UnarySet(pred))
			}
		}
		pass = func(prefix string, docs []*mdlog.Tree) error {
			if len(docs) == 1 {
				db, err := q.Eval(ctx, docs[0])
				if err != nil {
					return err
				}
				print(prefix, db)
				return nil
			}
			for _, res := range (mdlog.Runner{Workers: *workers}).EvalAll(ctx, q, docs) {
				if res.Err != nil {
					return fmt.Errorf("document %d: %w", res.Index, res.Err)
				}
				print(fmt.Sprintf("%s[doc %d] ", prefix, res.Index), res.DB)
			}
			return nil
		}
		if lang == mdlog.LangSpanner {
			// Spanner mode: the result is the span relations, printed one
			// row per line; the node part's ?- selection stays internal.
			pass = func(prefix string, docs []*mdlog.Tree) error {
				for _, res := range (mdlog.Runner{Workers: *workers}).SpansAll(ctx, q, docs) {
					if res.Err != nil {
						return fmt.Errorf("document %d: %w", res.Index, res.Err)
					}
					p := prefix
					if len(docs) > 1 {
						p = fmt.Sprintf("%s[doc %d] ", prefix, res.Index)
					}
					printSpans(stdout, p, res.Spans)
				}
				return nil
			}
		}
		finishStats = func() {
			s := q.Stats()
			fmt.Fprintf(stderr, "parse %v, compile %v, materialize %v, eval %v, %d facts, %d spans over %d runs (%d cache hits)\n",
				s.Parse, s.Compile, s.Materialize, s.Eval, s.Facts, s.Spans, s.Runs, s.CacheHits)
		}
	}

	if *watchArg {
		if err := watchLoop(stdout, treeArgs, treeFiles, htmlFiles, *watchIvl, *watchCount, *showTree, pass); err != nil {
			return err
		}
	} else {
		docs, err := loadDocs(treeArgs, treeFiles, htmlFiles)
		if err != nil {
			return err
		}
		if len(docs) == 0 {
			return fmt.Errorf("provide at least one -tree, -treefile or -html")
		}
		if *showTree {
			for _, d := range docs {
				fmt.Fprint(stdout, d.Pretty())
			}
		}
		if err := pass("", docs); err != nil {
			return err
		}
	}
	if *showStats {
		finishStats()
	}
	return nil
}

// fileStamp is the change signature a watch poll compares: a file is
// "changed" when its mtime or size differs from the previous poll.
type fileStamp struct {
	mod  time.Time
	size int64
}

func stampFiles(files []string) ([]fileStamp, error) {
	stamps := make([]fileStamp, len(files))
	for i, f := range files {
		fi, err := os.Stat(f)
		if err != nil {
			return nil, err
		}
		stamps[i] = fileStamp{mod: fi.ModTime(), size: fi.Size()}
	}
	return stamps, nil
}

// watchLoop reloads and re-extracts the document files each time one
// changes on disk (mtime/size polling — portable, no inotify
// dependency). Each extraction pass prints with a "[pass N]" prefix.
// count > 0 bounds the number of passes; count == 0 runs until the
// process is interrupted.
func watchLoop(stdout io.Writer, treeArgs, treeFiles, htmlFiles []string, interval time.Duration, count int, showTree bool, pass func(string, []*mdlog.Tree) error) error {
	if len(treeArgs) > 0 {
		return fmt.Errorf("-watch needs file-backed documents (-treefile or -html), not -tree literals")
	}
	files := append(append([]string{}, treeFiles...), htmlFiles...)
	if len(files) == 0 {
		return fmt.Errorf("provide at least one -treefile or -html")
	}
	if interval <= 0 {
		return fmt.Errorf("-watch-interval must be positive")
	}
	prev, err := stampFiles(files)
	if err != nil {
		return err
	}
	for n := 1; ; n++ {
		docs, err := loadDocs(nil, treeFiles, htmlFiles)
		if err != nil {
			return err
		}
		if showTree {
			for _, d := range docs {
				fmt.Fprint(stdout, d.Pretty())
			}
		}
		if err := pass(fmt.Sprintf("[pass %d] ", n), docs); err != nil {
			return err
		}
		if count > 0 && n >= count {
			return nil
		}
		// Block until some watched file's stamp moves.
		for {
			time.Sleep(interval)
			cur, err := stampFiles(files)
			if err != nil {
				return err
			}
			changed := false
			for i := range cur {
				if cur[i] != prev[i] {
					changed = true
				}
			}
			if changed {
				prev = cur
				break
			}
		}
	}
}

// explainSet prints the fused set's compile plan: the registry-wide
// fuse/CSE/subsumption report followed by one line per member saying
// how it will be served (evaluated in the shared pass, answered purely
// by projection from an equivalent member, or run individually).
func explainSet(w io.Writer, set *mdlog.QuerySet) {
	rep := set.FuseStats()
	fmt.Fprintf(w, "plan: %d programs fused, %d rules -> %d (dedup %d preds, cse %d preds/%d refs, subsume %d merged of %d checked, %d unknown)\n",
		rep.Members, rep.RulesIn, rep.RulesOut, rep.MergedPreds,
		rep.CSEPreds, rep.CSERefs, rep.SubsumedPreds, rep.SubsumeChecked, rep.SubsumeUnknown)
	for _, p := range set.Plans() {
		switch {
		case p.Subsumed:
			fmt.Fprintf(w, "  %s: subsumed, 0 rules, class %d, answers from %s\n", p.Name, p.Class, p.SharedWith)
		case p.Fused:
			fmt.Fprintf(w, "  %s: evaluated, %d rules, class %d\n", p.Name, p.Rules, p.Class)
		default:
			fmt.Fprintf(w, "  %s: individual, %d rules\n", p.Name, p.Rules)
		}
	}
}

// explainQuery prints a single compiled query's plan: the engine it
// routes through and, when the source passed through the datalog
// optimizer, what the optimizer did to it.
func explainQuery(w io.Writer, name string, q *mdlog.CompiledQuery) {
	fmt.Fprintf(w, "plan: %s on engine %s", name, q.EngineName())
	if o := q.OptStats(); o.RulesBefore > 0 {
		fmt.Fprintf(w, ", %s: %d rules -> %d (inlined %d, dead %d)",
			o.Level, o.RulesBefore, o.RulesAfter, o.Inlined, o.DeadRules)
	}
	fmt.Fprintln(w)
}

// printSpans renders span relations one row per line:
//
//	price(node 7): amt="2.20" [1:5]
func printSpans(w io.Writer, prefix string, res mdlog.SpanResult) {
	for _, rel := range res {
		for _, row := range rel.Rows {
			fmt.Fprintf(w, "%s%s(node %d):", prefix, rel.Name, row.Node)
			for i, sp := range row.Spans {
				fmt.Fprintf(w, " %s=%q [%d:%d]", rel.Vars[i], sp.Text, sp.Start, sp.End)
			}
			fmt.Fprintln(w)
		}
	}
}

// progName labels a program source by its file base name without
// extension ("wrappers/items.elog" → "items").
func progName(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

func loadDocs(terms, termFiles, htmlFiles []string) ([]*mdlog.Tree, error) {
	var docs []*mdlog.Tree
	for _, s := range terms {
		t, err := mdlog.ParseTree(s)
		if err != nil {
			return nil, err
		}
		docs = append(docs, t)
	}
	for _, f := range termFiles {
		b, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		t, err := mdlog.ParseTree(string(b))
		if err != nil {
			return nil, err
		}
		docs = append(docs, t)
	}
	for _, f := range htmlFiles {
		b, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		docs = append(docs, mdlog.ParseHTML(string(b)))
	}
	return docs, nil
}
