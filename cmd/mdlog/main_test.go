package main

// CLI smoke tests: run() against fixture documents, golden output
// (regenerate with `go test ./cmd/mdlog -update`).

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, golden string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", golden)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestGoldenDatalogOnHTML(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-program", "testdata/wrapper.dl", "-html", "testdata/page.html"}, &out, &errb); err != nil {
		t.Fatalf("%v (stderr: %s)", err, errb.String())
	}
	checkGolden(t, "datalog_html.golden", out.Bytes())
}

func TestGoldenXPathMultiDoc(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{
		"-lang", "xpath", "-query", "//td[b]",
		"-html", "testdata/page.html", "-html", "testdata/page.html",
	}
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("%v (stderr: %s)", err, errb.String())
	}
	checkGolden(t, "xpath_multidoc.golden", out.Bytes())
}

func TestGoldenTermTree(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-query", "p(X) :- label_b(X). ?- p.", "-tree", "a(b,c(b))", "-print-tree"}
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("%v (stderr: %s)", err, errb.String())
	}
	checkGolden(t, "term_tree.golden", out.Bytes())
}

func TestGoldenSpanner(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-lang", "spanner", "-program", "testdata/prices.span", "-html", "testdata/page.html"}
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("%v (stderr: %s)", err, errb.String())
	}
	checkGolden(t, "spanner_html.golden", out.Bytes())
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-tree", "a"}, &out, &errb); err == nil {
		t.Error("want an error without -program/-query")
	}
	if err := run([]string{"-query", "p(X) :- q(X).", "-lang", "nope", "-tree", "a"}, &out, &errb); err == nil {
		t.Error("want an error for an unknown language")
	}
	if err := run([]string{"-query", "p(X) :- label_a(X). ?- p."}, &out, &errb); err == nil {
		t.Error("want an error without documents")
	}
	if err := run([]string{"-h"}, &out, &errb); err != nil {
		t.Errorf("-h should print usage and succeed, got %v", err)
	}
	err := run([]string{"-query", "p(X) :- label_a(X). ?- p.", "-tree", "a", "-engine", "bogus"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "valid engines: linear, bitmap, seminaive, naive, lit") {
		t.Errorf("unknown -engine must name the valid options, got %v", err)
	}
	if err := run([]string{"-query", "p(X) :- label_a(X). ?- p.", "-tree", "a", "-O", "7"}, &out, &errb); err == nil {
		t.Error("want an error for a bad -O level")
	}
}

// TestEngineOptMatrix runs one query through every engine and both
// optimization levels; stdout must be identical across the matrix.
func TestEngineOptMatrix(t *testing.T) {
	var want string
	for _, engine := range []string{"linear", "seminaive", "naive", "lit"} {
		for _, o := range []string{"-O0", "-O1"} {
			var out, errb bytes.Buffer
			args := []string{"-program", "testdata/wrapper.dl", "-html", "testdata/page.html", "-engine", engine, o}
			if err := run(args, &out, &errb); err != nil {
				t.Fatalf("%s %s: %v (stderr: %s)", engine, o, err, errb.String())
			}
			if want == "" {
				want = out.String()
			} else if out.String() != want {
				t.Errorf("%s %s prints %q, want %q", engine, o, out.String(), want)
			}
		}
	}
}

func TestGoldenMultiProgramFused(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{
		"-lang", "xpath", "-query", "//td[b]", "-query", "//td",
		"-html", "testdata/page.html",
	}
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("%v (stderr: %s)", err, errb.String())
	}
	checkGolden(t, "multi_program.golden", out.Bytes())
}

// TestGoldenExplainSubsumed: -explain prints the compile plan; the
// second program is a dom-padded, fragment-duplicated variant of the
// first, so the containment checker proves it equivalent and the plan
// shows it answered purely by projection.
func TestGoldenExplainSubsumed(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{
		"-explain",
		"-query", "q(X) :- firstchild(X,Y), label_td(Y). ?- q.",
		"-query", "q(X) :- dom(X), firstchild(X,Y), label_td(Y), firstchild(X,Z), label_td(Z). ?- q.",
		"-html", "testdata/page.html",
	}
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("%v (stderr: %s)", err, errb.String())
	}
	checkGolden(t, "explain_subsumed.golden", out.Bytes())
}

func TestExplainSingleProgram(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-explain", "-program", "testdata/wrapper.dl", "-html", "testdata/page.html"}
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("%v (stderr: %s)", err, errb.String())
	}
	if !strings.HasPrefix(out.String(), "plan: wrapper on engine ") {
		t.Errorf("single-program -explain must lead with the plan line, got %q", out.String())
	}
}

// TestWatchMode: -watch re-extracts when the watched file changes and
// exits after -watch-count passes, so the whole loop is observable.
func TestWatchMode(t *testing.T) {
	dir := t.TempDir()
	doc := filepath.Join(dir, "doc.term")
	if err := os.WriteFile(doc, []byte("a(b,c)"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-query", "p(X) :- label_b(X). ?- p.",
			"-treefile", doc,
			"-watch", "-watch-interval", "5ms", "-watch-count", "2",
		}, &out, &errb)
	}()
	// Give pass 1 a head start, then grow the file; the poll loop
	// compares size as well as mtime, so this registers regardless of
	// filesystem timestamp granularity.
	time.Sleep(50 * time.Millisecond)
	if err := os.WriteFile(doc, []byte("a(b,c(b,b))"), 0o644); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("%v (stderr: %s)", err, errb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watch loop did not exit after -watch-count passes")
	}
	want := "[pass 1] p: [1]\n[pass 2] p: [1 3 4]\n"
	if out.String() != want {
		t.Errorf("watch output = %q, want %q", out.String(), want)
	}
}

func TestWatchModeErrors(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-query", "p(X) :- label_a(X). ?- p.", "-tree", "a", "-watch"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "file-backed") {
		t.Errorf("-watch with -tree literal must error, got %v", err)
	}
	err = run([]string{"-query", "p(X) :- label_a(X). ?- p.", "-watch"}, &out, &errb)
	if err == nil {
		t.Error("-watch without documents must error")
	}
}

func TestMultiProgramMixedFlagsRejected(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-query", "//td", "-program", "testdata/wrapper.dl", "-tree", "a"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "alternatives") {
		t.Errorf("mixing -query and -program must error, got %v", err)
	}
}
