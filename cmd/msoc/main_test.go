package main

// CLI smoke tests: run() with golden output (regenerate with
// `go test ./cmd/msoc -update`).

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, golden string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", golden)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestGoldenEvalCrossCheck runs both routes (automaton and Theorem 4.4
// datalog translation) on a fixture tree; identical selections are
// part of the golden file.
func TestGoldenEvalCrossCheck(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-formula", "leaf(x)", "-alphabet", "a,b", "-tree", "a(b,a(b,b))"}
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("%v (stderr: %s)", err, errb.String())
	}
	checkGolden(t, "leaf_eval.golden", out.Bytes())
}

func TestGoldenStats(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-formula", "exists y (child(x,y) & label_b(y))", "-alphabet", "a,b", "-stats"}
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("%v (stderr: %s)", err, errb.String())
	}
	checkGolden(t, "child_b_stats.golden", out.Bytes())
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(nil, &out, &errb); err == nil {
		t.Error("want an error without -formula")
	}
	if err := run([]string{"-formula", "leaf(x", "-alphabet", "a"}, &out, &errb); err == nil {
		t.Error("want a parse error")
	}
	err := run([]string{"-formula", "leaf(x)", "-alphabet", "a,b", "-engine", "bogus"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "valid engines: linear, bitmap, seminaive, naive, lit") {
		t.Errorf("unknown -engine must name the valid options, got %v", err)
	}
	if err := run([]string{"-formula", "leaf(x)", "-alphabet", "a,b", "-O", "zz"}, &out, &errb); err == nil {
		t.Error("want an error for a bad -O level")
	}
}
