// Command msoc compiles a unary MSO query to monadic datalog
// (Theorem 4.4) and optionally evaluates it:
//
//	msoc -formula 'exists y (child(x,y) & label_b(y))' -alphabet a,b
//	msoc -formula 'leaf(x)' -alphabet a,b -tree 'a(b,a(b))'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mdlog/internal/eval"
	"mdlog/internal/mso"
	"mdlog/internal/tree"
)

func main() {
	var (
		formula  = flag.String("formula", "", "MSO formula with one free first-order variable (required)")
		alphabet = flag.String("alphabet", "a,b", "comma-separated document alphabet Σ")
		treeArg  = flag.String("tree", "", "evaluate on this tree (term syntax) instead of printing the program")
		stats    = flag.Bool("stats", false, "print automaton/program size statistics")
	)
	flag.Parse()
	if *formula == "" {
		fail("missing -formula")
	}
	f, err := mso.Parse(*formula)
	if err != nil {
		fail("%v", err)
	}
	q, err := mso.CompileQuery(f)
	if err != nil {
		fail("%v", err)
	}
	labels := strings.Split(*alphabet, ",")
	prog, err := q.ToDatalog(labels, "mso_select")
	if err != nil {
		fail("%v", err)
	}
	if *stats {
		fmt.Printf("automaton states: %d\nautomaton transitions: %d\ndatalog rules: %d\n",
			q.C.DTA.NumStates, q.C.DTA.NumTransitions(), len(prog.Rules))
		return
	}
	if *treeArg != "" {
		t, err := tree.Parse(*treeArg)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("automaton:  %v\n", q.Select(t))
		res, err := eval.LinearTree(prog, t)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("datalog:    %v\n", res.UnarySet("mso_select"))
		return
	}
	fmt.Print(prog.String())
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "msoc: "+format+"\n", args...)
	os.Exit(1)
}
