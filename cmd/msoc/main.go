// Command msoc compiles a unary MSO query to monadic datalog
// (Theorem 4.4) and optionally evaluates it:
//
//	msoc -formula 'exists y (child(x,y) & label_b(y))' -alphabet a,b
//	msoc -formula 'leaf(x)' -alphabet a,b -tree 'a(b,a(b))'
//
// Evaluation cross-checks the unified Compile route (tree automaton)
// against the Theorem 4.4 datalog translation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	mdlog "mdlog"
	"mdlog/internal/mso"
)

func main() {
	var (
		formula  = flag.String("formula", "", "MSO formula with one free first-order variable (required)")
		alphabet = flag.String("alphabet", "a,b", "comma-separated document alphabet Σ")
		treeArg  = flag.String("tree", "", "evaluate on this tree (term syntax) instead of printing the program")
		stats    = flag.Bool("stats", false, "print automaton/program size statistics")
	)
	flag.Parse()
	if *formula == "" {
		fail("missing -formula")
	}
	f, err := mso.Parse(*formula)
	if err != nil {
		fail("%v", err)
	}
	q, err := mso.CompileQuery(f)
	if err != nil {
		fail("%v", err)
	}
	labels := strings.Split(*alphabet, ",")
	prog, err := q.ToDatalog(labels, "mso_select")
	if err != nil {
		fail("%v", err)
	}
	if *stats {
		fmt.Printf("automaton states: %d\nautomaton transitions: %d\ndatalog rules: %d\n",
			q.C.DTA.NumStates, q.C.DTA.NumTransitions(), len(prog.Rules))
		return
	}
	if *treeArg != "" {
		t, err := mdlog.ParseTree(*treeArg)
		if err != nil {
			fail("%v", err)
		}
		ctx := context.Background()
		// Route 1: the unified API (compiles to the tree automaton).
		cq, err := mdlog.Compile(*formula, mdlog.LangMSO)
		if err != nil {
			fail("%v", err)
		}
		autoSel, err := cq.Select(ctx, t)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("automaton:  %v\n", autoSel)
		// Route 2: the Theorem 4.4 translation through the datalog plan.
		dq, err := mdlog.CompileProgram(prog, mdlog.WithQueryPred("mso_select"))
		if err != nil {
			fail("%v", err)
		}
		dlSel, err := dq.Select(ctx, t)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("datalog:    %v\n", dlSel)
		return
	}
	fmt.Print(prog.String())
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "msoc: "+format+"\n", args...)
	os.Exit(1)
}
