// Command msoc compiles a unary MSO query to monadic datalog
// (Theorem 4.4) and optionally evaluates it:
//
//	msoc -formula 'exists y (child(x,y) & label_b(y))' -alphabet a,b
//	msoc -formula 'leaf(x)' -alphabet a,b -tree 'a(b,a(b))'
//
// Evaluation cross-checks the unified Compile route (tree automaton)
// against the Theorem 4.4 datalog translation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	mdlog "mdlog"
	"mdlog/internal/cliflag"
	"mdlog/internal/mso"
)

// errFlagParse marks a flag error the FlagSet itself already
// reported on stderr; main exits nonzero without repeating it.
var errFlagParse = errors.New("flag parsing failed")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errFlagParse) {
			fmt.Fprintf(os.Stderr, "msoc: %v\n", err)
		}
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("msoc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		formula  = fs.String("formula", "", "MSO formula with one free first-order variable (required)")
		alphabet = fs.String("alphabet", "a,b", "comma-separated document alphabet Σ")
		treeArg  = fs.String("tree", "", "evaluate on this tree (term syntax) instead of printing the program")
		stats    = fs.Bool("stats", false, "print automaton/program size statistics")
		engine   = cliflag.Engine(fs)
		optArg   = cliflag.OptLevel(fs)
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage already printed, exit 0
		}
		return errFlagParse // the FlagSet already printed the error + usage
	}
	if *formula == "" {
		return fmt.Errorf("missing -formula")
	}
	eng, err := engine()
	if err != nil {
		return err
	}
	optLevel, err := optArg()
	if err != nil {
		return err
	}
	f, err := mso.Parse(*formula)
	if err != nil {
		return err
	}
	q, err := mso.CompileQuery(f)
	if err != nil {
		return err
	}
	labels := strings.Split(*alphabet, ",")
	prog, err := q.ToDatalog(labels, "mso_select")
	if err != nil {
		return err
	}
	if *stats {
		dq, err := mdlog.CompileProgram(prog,
			mdlog.WithQueryPred("mso_select"), mdlog.WithExtract("mso_select"),
			mdlog.WithEngine(eng), mdlog.WithOptLevel(optLevel))
		if err != nil {
			return err
		}
		rep := dq.OptStats()
		fmt.Fprintf(stdout, "automaton states: %d\nautomaton transitions: %d\ndatalog rules: %d\nplanned rules (%s): %d\n",
			q.C.DTA.NumStates, q.C.DTA.NumTransitions(), len(prog.Rules), rep.Level, rep.RulesAfter)
		return nil
	}
	if *treeArg != "" {
		t, err := mdlog.ParseTree(*treeArg)
		if err != nil {
			return err
		}
		ctx := context.Background()
		// Route 1: the unified API (compiles to the tree automaton).
		cq, err := mdlog.Compile(*formula, mdlog.LangMSO)
		if err != nil {
			return err
		}
		autoSel, err := cq.Select(ctx, t)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "automaton:  %v\n", autoSel)
		// Route 2: the Theorem 4.4 translation through the datalog plan
		// (goal-directed: only mso_select is observable, so -O 1 prunes
		// the automaton-state predicates the query never reaches).
		dq, err := mdlog.CompileProgram(prog,
			mdlog.WithQueryPred("mso_select"), mdlog.WithExtract("mso_select"),
			mdlog.WithEngine(eng), mdlog.WithOptLevel(optLevel))
		if err != nil {
			return err
		}
		dlSel, err := dq.Select(ctx, t)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "datalog:    %v\n", dlSel)
		return nil
	}
	fmt.Fprint(stdout, prog.String())
	return nil
}
