// Command benchtables regenerates every experiment table of
// EXPERIMENTS.md from live measurements:
//
//	benchtables           # full sizes
//	benchtables -quick    # smaller sizes for a fast smoke run
//	benchtables -id CLAIM-T42-data
//	benchtables -list     # print the available experiment ids
//	benchtables -treesize BENCH_treesize.json
//	                      # write the substrate scaling points as JSON
//	benchtables -queryset BENCH_queryset.json
//	                      # write the N-wrapper fusion points as JSON
//	benchtables -incremental BENCH_incremental.json
//	                      # write the incremental-vs-full revision points as JSON
//	benchtables -service BENCH_service.json
//	                      # write the fleet-mode dedup + shard scaling points as JSON
//	benchtables -subsume BENCH_subsume.json
//	                      # write the wrapper-subsumption points as JSON
//	benchtables -span BENCH_span.json
//	                      # write the span-extraction points as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mdlog/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "use smaller experiment sizes")
	id := flag.String("id", "", "run only the experiment with this id")
	list := flag.Bool("list", false, "list experiment ids and titles without running them")
	treesize := flag.String("treesize", "", "write EXT-TREESIZE points (parse/materialize/select ns-per-node) to this JSON file and exit")
	opt := flag.String("opt", "", "write EXT-OPT points (rule counts and Select speedup per wrapper) to this JSON file and exit")
	queryset := flag.String("queryset", "", "write EXT-QUERYSET points (fused vs sequential N-wrapper evaluation) to this JSON file and exit")
	incremental := flag.String("incremental", "", "write EXT-INCREMENTAL points (incremental vs full revision cost per edit fraction) to this JSON file and exit")
	svc := flag.String("service", "", "write EXT-SERVICE points (dedup-cache sweep + shard scaling over HTTP) to this JSON file and exit")
	subsume := flag.String("subsume", "", "write EXT-SUBSUME points (containment-aware vs plain fused pipeline per fleet size) to this JSON file and exit")
	span := flag.String("span", "", "write EXT-SPAN points (compiled span extraction vs node-select + Go regexp) to this JSON file and exit")
	flag.Parse()
	cfg := experiments.Config{Quick: *quick}
	if *list {
		for _, e := range experiments.Index() {
			fmt.Printf("%-18s %s\n", e[0], e[1])
		}
		return
	}
	writeJSON := func(path string, v any, what string, n int) {
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d %s)\n", path, n, what)
	}
	if *treesize != "" {
		pts := experiments.TreeSizeData(cfg)
		writeJSON(*treesize, pts, "sizes", len(pts))
		return
	}
	if *opt != "" {
		pts := experiments.OptData(cfg)
		writeJSON(*opt, pts, "wrappers", len(pts))
		return
	}
	if *queryset != "" {
		pts := experiments.QuerySetData(cfg)
		writeJSON(*queryset, pts, "fleet sizes", len(pts))
		return
	}
	if *incremental != "" {
		pts := experiments.IncrementalData(cfg)
		writeJSON(*incremental, pts, "revision points", len(pts))
		return
	}
	if *subsume != "" {
		pts := experiments.SubsumeData(cfg)
		writeJSON(*subsume, pts, "fleet sizes", len(pts))
		return
	}
	if *span != "" {
		pts := experiments.SpanData(cfg)
		writeJSON(*span, pts, "sizes", len(pts))
		return
	}
	if *svc != "" {
		b := experiments.ServiceData(cfg)
		writeJSON(*svc, b, "measurement points", len(b.Dedup)+len(b.Shard))
		return
	}
	for _, t := range experiments.All(cfg) {
		if *id != "" && t.ID != *id {
			continue
		}
		fmt.Println(t.Markdown())
	}
}
