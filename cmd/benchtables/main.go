// Command benchtables regenerates every experiment table of
// EXPERIMENTS.md from live measurements:
//
//	benchtables           # full sizes
//	benchtables -quick    # smaller sizes for a fast smoke run
//	benchtables -id CLAIM-T42-data
//	benchtables -list     # print the available experiment ids
package main

import (
	"flag"
	"fmt"

	"mdlog/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "use smaller experiment sizes")
	id := flag.String("id", "", "run only the experiment with this id")
	list := flag.Bool("list", false, "list experiment ids and titles without running them")
	flag.Parse()
	cfg := experiments.Config{Quick: *quick}
	if *list {
		for _, e := range experiments.Index() {
			fmt.Printf("%-18s %s\n", e[0], e[1])
		}
		return
	}
	for _, t := range experiments.All(cfg) {
		if *id != "" && t.ID != *id {
			continue
		}
		fmt.Println(t.Markdown())
	}
}
