// Command benchtables regenerates every experiment table of
// EXPERIMENTS.md from live measurements:
//
//	benchtables           # full sizes
//	benchtables -quick    # smaller sizes for a fast smoke run
//	benchtables -id CLAIM-T42-data
package main

import (
	"flag"
	"fmt"

	"mdlog/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "use smaller experiment sizes")
	id := flag.String("id", "", "run only the experiment with this id")
	flag.Parse()
	cfg := experiments.Config{Quick: *quick}
	for _, t := range experiments.All(cfg) {
		if *id != "" && t.ID != *id {
			continue
		}
		fmt.Println(t.Markdown())
	}
}
