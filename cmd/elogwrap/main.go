// Command elogwrap compiles an Elog⁻ / Elog⁻Δ wrapper once and runs
// it on one or more HTML documents, printing each extracted tree as
// XML:
//
//	elogwrap -program wrapper.elog page.html
//	elogwrap -program wrapper.elog -patterns item,price p1.html p2.html
//
// With several documents the wrapper fans out over a bounded worker
// pool; outputs print in input order.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	mdlog "mdlog"
	"mdlog/internal/cliflag"
	"mdlog/internal/wrap"
)

// errFlagParse marks a flag error the FlagSet itself already
// reported on stderr; main exits nonzero without repeating it.
var errFlagParse = errors.New("flag parsing failed")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errFlagParse) {
			fmt.Fprintf(os.Stderr, "elogwrap: %v\n", err)
		}
		os.Exit(1)
	}
}

// run is the testable body of the command: XML on stdout, assignments
// (with -assign) on stderr.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("elogwrap", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		programFile = fs.String("program", "", "Elog program file (required)")
		patterns    = fs.String("patterns", "", "comma-separated patterns to extract (default: all)")
		keepText    = fs.Bool("text", true, "copy #text content into the output")
		showAssign  = fs.Bool("assign", false, "also print the node assignment per pattern")
		workers     = fs.Int("workers", 0, "worker pool size (0: GOMAXPROCS)")
		engineArg   = cliflag.Engine(fs)
		optArg      = cliflag.OptLevel(fs)
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage already printed, exit 0
		}
		return errFlagParse // the FlagSet already printed the error + usage
	}
	if *programFile == "" || fs.NArg() == 0 {
		return fmt.Errorf("need -program and at least one HTML file argument")
	}
	engine, err := engineArg()
	if err != nil {
		return err
	}
	optLevel, err := optArg()
	if err != nil {
		return err
	}
	src, err := os.ReadFile(*programFile)
	if err != nil {
		return err
	}
	opts := []mdlog.Option{
		mdlog.WithWrapOptions(mdlog.WrapOptions{KeepText: *keepText}),
		mdlog.WithEngine(engine), mdlog.WithOptLevel(optLevel),
	}
	if *patterns != "" {
		opts = append(opts, mdlog.WithExtract(strings.Split(*patterns, ",")...))
	}
	q, err := mdlog.Compile(string(src), mdlog.LangElog, opts...)
	if err != nil {
		return err
	}

	docs := make([]*mdlog.Tree, fs.NArg())
	for i, f := range fs.Args() {
		page, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		docs[i] = mdlog.ParseHTML(string(page))
	}

	results := (mdlog.Runner{Workers: *workers}).WrapAll(context.Background(), q, docs)
	for i, res := range results {
		if res.Err != nil {
			return fmt.Errorf("%s: %w", fs.Arg(i), res.Err)
		}
		if len(results) > 1 {
			fmt.Fprintf(stdout, "<!-- %s -->\n", fs.Arg(i))
		}
		if *showAssign {
			for pat, ids := range res.Assignment {
				fmt.Fprintf(stderr, "%s: %v\n", pat, ids)
			}
		}
		if err := wrap.WriteXML(stdout, res.Output); err != nil {
			return err
		}
	}
	return nil
}
