// Command elogwrap compiles an Elog⁻ / Elog⁻Δ wrapper once and runs
// it on one or more HTML documents, printing each extracted tree as
// XML:
//
//	elogwrap -program wrapper.elog page.html
//	elogwrap -program wrapper.elog -patterns item,price p1.html p2.html
//
// With several documents the wrapper fans out over a bounded worker
// pool; outputs print in input order.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	mdlog "mdlog"
	"mdlog/internal/wrap"
)

func main() {
	var (
		programFile = flag.String("program", "", "Elog program file (required)")
		patterns    = flag.String("patterns", "", "comma-separated patterns to extract (default: all)")
		keepText    = flag.Bool("text", true, "copy #text content into the output")
		showAssign  = flag.Bool("assign", false, "also print the node assignment per pattern")
		workers     = flag.Int("workers", 0, "worker pool size (0: GOMAXPROCS)")
	)
	flag.Parse()
	if *programFile == "" || flag.NArg() == 0 {
		fail("need -program and at least one HTML file argument")
	}
	src, err := os.ReadFile(*programFile)
	if err != nil {
		fail("%v", err)
	}
	opts := []mdlog.Option{mdlog.WithWrapOptions(mdlog.WrapOptions{KeepText: *keepText})}
	if *patterns != "" {
		opts = append(opts, mdlog.WithExtract(strings.Split(*patterns, ",")...))
	}
	q, err := mdlog.Compile(string(src), mdlog.LangElog, opts...)
	if err != nil {
		fail("%v", err)
	}

	docs := make([]*mdlog.Tree, flag.NArg())
	for i, f := range flag.Args() {
		page, err := os.ReadFile(f)
		if err != nil {
			fail("%v", err)
		}
		docs[i] = mdlog.ParseHTML(string(page))
	}

	results := (mdlog.Runner{Workers: *workers}).WrapAll(context.Background(), q, docs)
	for i, res := range results {
		if res.Err != nil {
			fail("%s: %v", flag.Arg(i), res.Err)
		}
		if len(results) > 1 {
			fmt.Printf("<!-- %s -->\n", flag.Arg(i))
		}
		if *showAssign {
			for pat, ids := range res.Assignment {
				fmt.Fprintf(os.Stderr, "%s: %v\n", pat, ids)
			}
		}
		if err := wrap.WriteXML(os.Stdout, res.Output); err != nil {
			fail("%v", err)
		}
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "elogwrap: "+format+"\n", args...)
	os.Exit(1)
}
