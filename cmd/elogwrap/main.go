// Command elogwrap runs an Elog⁻ / Elog⁻Δ wrapper on an HTML document
// and prints the extracted tree as XML:
//
//	elogwrap -program wrapper.elog -html page.html
//	elogwrap -program wrapper.elog -html page.html -patterns item,price
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mdlog/internal/elog"
	"mdlog/internal/html"
	"mdlog/internal/wrap"
)

func main() {
	var (
		programFile = flag.String("program", "", "Elog program file (required)")
		htmlFile    = flag.String("html", "", "HTML document file (required)")
		patterns    = flag.String("patterns", "", "comma-separated patterns to extract (default: all)")
		keepText    = flag.Bool("text", true, "copy #text content into the output")
		showAssign  = flag.Bool("assign", false, "also print the node assignment per pattern")
	)
	flag.Parse()
	if *programFile == "" || *htmlFile == "" {
		fail("need -program and -html")
	}
	src, err := os.ReadFile(*programFile)
	if err != nil {
		fail("%v", err)
	}
	prog, err := elog.ParseProgram(string(src))
	if err != nil {
		fail("%v", err)
	}
	page, err := os.ReadFile(*htmlFile)
	if err != nil {
		fail("%v", err)
	}
	doc := html.Parse(string(page))
	w := &wrap.ElogWrapper{Program: prog, Options: wrap.Options{KeepText: *keepText}}
	if *patterns != "" {
		w.Extract = strings.Split(*patterns, ",")
	}
	out, assign, err := w.Run(doc)
	if err != nil {
		fail("%v", err)
	}
	if *showAssign {
		for pat, ids := range assign {
			fmt.Fprintf(os.Stderr, "%s: %v\n", pat, ids)
		}
	}
	if err := wrap.WriteXML(os.Stdout, out); err != nil {
		fail("%v", err)
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "elogwrap: "+format+"\n", args...)
	os.Exit(1)
}
