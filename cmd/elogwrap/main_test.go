package main

// CLI smoke tests: run() against a fixture wrapper and page, golden
// XML output (regenerate with `go test ./cmd/elogwrap -update`).

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, golden string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", golden)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestGoldenWrapSingleDoc(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-program", "testdata/wrapper.elog", "testdata/page.html"}
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("%v (stderr: %s)", err, errb.String())
	}
	checkGolden(t, "wrap_single.golden", out.Bytes())
}

func TestGoldenWrapMultiDocPatterns(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{
		"-program", "testdata/wrapper.elog", "-patterns", "price",
		"testdata/page.html", "testdata/page.html",
	}
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("%v (stderr: %s)", err, errb.String())
	}
	checkGolden(t, "wrap_multi_price.golden", out.Bytes())
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"testdata/page.html"}, &out, &errb); err == nil {
		t.Error("want an error without -program")
	}
	if err := run([]string{"-program", "testdata/wrapper.elog"}, &out, &errb); err == nil {
		t.Error("want an error without documents")
	}
	if err := run([]string{"-program", "testdata/missing.elog", "testdata/page.html"}, &out, &errb); err == nil {
		t.Error("want an error for a missing program file")
	}
	err := run([]string{"-program", "testdata/wrapper.elog", "-engine", "warp", "testdata/page.html"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "valid engines: linear, bitmap, seminaive, naive, lit") {
		t.Errorf("unknown -engine must name the valid options, got %v", err)
	}
	if err := run([]string{"-program", "testdata/wrapper.elog", "-O", "max", "testdata/page.html"}, &out, &errb); err == nil {
		t.Error("want an error for a bad -O level")
	}
}

// TestEnginesAgree wraps the fixture page through every engine at both
// optimization levels; the XML output must be byte-identical.
func TestEnginesAgree(t *testing.T) {
	// LIT is absent: the Theorem 6.4 translation's subelem chains are
	// neither all-monadic nor guarded, so the LIT engine rejects them
	// by design (Proposition 3.7).
	var want []byte
	for _, engine := range []string{"linear", "seminaive", "naive"} {
		for _, o := range []string{"-O0", "-O1"} {
			var out, errb bytes.Buffer
			args := []string{"-program", "testdata/wrapper.elog", "-engine", engine, o, "testdata/page.html"}
			if err := run(args, &out, &errb); err != nil {
				t.Fatalf("%s %s: %v (stderr: %s)", engine, o, err, errb.String())
			}
			if want == nil {
				want = out.Bytes()
			} else if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("%s %s output differs:\n%s\nvs\n%s", engine, o, out.Bytes(), want)
			}
		}
	}
}
