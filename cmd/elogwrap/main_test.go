package main

// CLI smoke tests: run() against a fixture wrapper and page, golden
// XML output (regenerate with `go test ./cmd/elogwrap -update`).

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, golden string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", golden)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestGoldenWrapSingleDoc(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-program", "testdata/wrapper.elog", "testdata/page.html"}
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("%v (stderr: %s)", err, errb.String())
	}
	checkGolden(t, "wrap_single.golden", out.Bytes())
}

func TestGoldenWrapMultiDocPatterns(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{
		"-program", "testdata/wrapper.elog", "-patterns", "price",
		"testdata/page.html", "testdata/page.html",
	}
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("%v (stderr: %s)", err, errb.String())
	}
	checkGolden(t, "wrap_multi_price.golden", out.Bytes())
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"testdata/page.html"}, &out, &errb); err == nil {
		t.Error("want an error without -program")
	}
	if err := run([]string{"-program", "testdata/wrapper.elog"}, &out, &errb); err == nil {
		t.Error("want an error without documents")
	}
	if err := run([]string{"-program", "testdata/missing.elog", "testdata/page.html"}, &out, &errb); err == nil {
		t.Error("want an error for a missing program file")
	}
}
