// Command mdlogd is the wrapper-serving daemon: it holds a registry of
// compiled wrappers (any of the seven query languages) and serves
// extraction over HTTP — single documents via POST /extract/{name},
// multi-document batches via POST /batch/{name}, wrapper management
// via PUT/GET/DELETE /wrappers/{name}, live document sessions via
// PUT/GET/PATCH/DELETE /documents/{id} with incrementally maintained
// POST /documents/{id}/extractall, and observability via GET /stats
// and GET /metrics. See README.md §mdlogd for the endpoint and config
// reference.
//
//	mdlogd -config mdlogd.json
//	mdlogd -addr :8090 -workers 8 -max-inflight 64
//	mdlogd -data-dir /var/lib/mdlogd              # persistent registry
//	mdlogd -shard-of 2/4 -data-dir ...            # fleet worker
//	mdlogd -front http://w0:8090,http://w1:8090   # fleet front tier
//
// Flags override the config file. With -data-dir the registry survives
// restarts (DataDir/wrappers.json, atomic replace-on-write) and SIGHUP
// reloads the snapshot without dropping a request. With -front the
// daemon serves no wrappers itself: it routes documents to the listed
// workers by content hash over a consistent-hash ring (see README.md
// §Running a fleet). The daemon shuts down gracefully on
// SIGINT/SIGTERM, draining in-flight requests within the configured
// grace window.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"mdlog/internal/cliflag"
	"mdlog/internal/service"
)

// isFlagSet reports whether the named flag was given explicitly.
func isFlagSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// errFlagParse marks a flag error the FlagSet itself already
// reported on stderr; main exits nonzero without repeating it.
var errFlagParse = errors.New("flag parsing failed")

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		if !errors.Is(err, errFlagParse) {
			fmt.Fprintf(os.Stderr, "mdlogd: %v\n", err)
		}
		os.Exit(1)
	}
}

// run parses flags, boots the server from the config (if any), and
// serves until ctx is canceled. Split from main for tests.
func run(ctx context.Context, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("mdlogd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		configFile  = fs.String("config", "", "JSON config file (addr, workers, limits, boot wrappers)")
		addr        = fs.String("addr", "", "listen address (overrides config; default "+service.DefaultAddr+")")
		workers     = fs.Int("workers", 0, "batch fan-out worker pool size (0: GOMAXPROCS)")
		maxInflight = fs.Int("max-inflight", 0, "admitted extraction requests bound (0: default, <0: unbounded)")
		dataDir     = fs.String("data-dir", "", "persist the wrapper registry under this directory (SIGHUP reloads it)")
		docCache    = fs.Int("doc-cache", 0, "content-hash document dedup cache entries (0: default, <0: disabled)")
		shardOf     = fs.String("shard-of", "", "run as shard i of n (\"i/n\"): reject documents owned by other shards")
		front       = fs.String("front", "", "run as the fleet front tier over these comma-separated worker URLs")
		frontInFl   = fs.Int("front-worker-inflight", 0, "front tier: forwarded requests bound per worker (0: default, <0: unbounded)")
		optArg      = cliflag.OptLevel(fs)
		engineArg   = cliflag.Engine(fs)
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage already printed, exit 0
		}
		return errFlagParse // the FlagSet already printed the error + usage
	}
	optLevel, err := optArg()
	if err != nil {
		return err
	}
	cfg := &service.Config{}
	if *configFile != "" {
		loaded, err := service.LoadConfig(*configFile)
		if err != nil {
			return err
		}
		cfg = loaded
	}
	if *addr != "" {
		cfg.Addr = *addr
	}
	if *workers != 0 {
		cfg.Workers = *workers
	}
	if *maxInflight != 0 {
		cfg.MaxInFlight = *maxInflight
	}
	// The flag wins over the config default; wrapper specs with their
	// own "opt" still override both.
	if isFlagSet(fs, "O") || isFlagSet(fs, "O0") || isFlagSet(fs, "O1") {
		cfg.Opt = optLevel.String()
	}
	// Same precedence for the engine: -engine beats the config's
	// daemon-wide default, per-wrapper "engine" specs beat both.
	if isFlagSet(fs, "engine") {
		engine, err := engineArg()
		if err != nil {
			return err
		}
		cfg.Engine = engine.String()
	}
	if *dataDir != "" {
		cfg.DataDir = *dataDir
	}
	if isFlagSet(fs, "doc-cache") {
		cfg.DocCacheEntries = *docCache
	}
	if *shardOf != "" {
		cfg.ShardOf = *shardOf
	}
	listenAddr := cfg.Addr
	if listenAddr == "" {
		listenAddr = service.DefaultAddr
	}
	if *front != "" {
		f, err := service.NewFront(service.FrontConfig{
			Workers:         splitWorkers(*front),
			WorkerInFlight:  *frontInFl,
			MaxBodyBytes:    cfg.MaxBodyBytes,
			RingReplicas:    cfg.RingReplicas,
			ShutdownGraceMS: cfg.ShutdownGraceMS,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "mdlogd: front tier over %d worker(s) on %s\n", len(f.Workers()), listenAddr)
		return f.ListenAndServe(ctx, listenAddr)
	}
	s, err := service.New(cfg)
	if err != nil {
		return err
	}
	// SIGHUP: zero-downtime reload of the persisted registry snapshot.
	// Without a data dir Reload fails; the daemon logs and keeps serving.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			if err := s.Reload(); err != nil {
				fmt.Fprintf(stderr, "mdlogd: reload: %v\n", err)
			} else {
				fmt.Fprintf(stderr, "mdlogd: reloaded %d wrapper(s) from store\n", s.Registry().Len())
			}
		}
	}()
	fmt.Fprintf(stderr, "mdlogd: serving %d wrapper(s) on %s\n", s.Registry().Len(), listenAddr)
	return s.ListenAndServe(ctx, listenAddr)
}

// splitWorkers parses the -front worker list (comma-separated URLs,
// empty elements dropped).
func splitWorkers(s string) []string {
	var out []string
	for _, w := range strings.Split(s, ",") {
		if w = strings.TrimSpace(w); w != "" {
			out = append(out, w)
		}
	}
	return out
}
