package main

// Boot smoke test: mdlogd comes up from a config file, serves an
// extraction, and shuts down cleanly on context cancellation (the
// signal path minus the signal).

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunBootServeShutdown(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "items.elog"), []byte(
		`item(x) :- root(x0), subelem("html.body.table.tr", x0, x).`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Pick a free port, then release it for the daemon. (Minimal race
	// window; fine for a smoke test.)
	cfgPath := filepath.Join(dir, "mdlogd.json")
	cfg := fmt.Sprintf(`{
  "addr": "127.0.0.1:%d",
  "workers": 2,
  "wrappers": [{"name": "items", "lang": "elog", "file": "items.elog"}]
}`, freePort(t))
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	var loaded struct {
		Addr string `json:"addr"`
	}
	if err := json.Unmarshal([]byte(cfg), &loaded); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, []string{"-config", cfgPath}, os.Stderr) }()

	url := "http://" + loaded.Addr
	page := `<html><body><table><tr><td>x</td></tr><tr><td>y</td></tr></table></body></html>`
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Post(url+"/extract/items", "text/html", strings.NewReader(page))
		if err == nil {
			var body map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("extract: status %d body %v", resp.StatusCode, body)
			}
			if nodes := body["nodes"].([]any); len(nodes) != 2 {
				t.Fatalf("extract nodes %v, want 2 rows", nodes)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil on graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func TestRunBadConfig(t *testing.T) {
	err := run(context.Background(), []string{"-config", filepath.Join(t.TempDir(), "missing.json")}, os.Stderr)
	if err == nil {
		t.Fatal("want an error for a missing config file")
	}
}

func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}
