// Command tmnf normalizes a monadic datalog program over
// τ_ur ∪ {child, lastchild} into Tree-Marking Normal Form
// (Theorem 5.2) and prints the result:
//
//	tmnf -program wrapper.dl
//	tmnf -program wrapper.dl -tree 'a(b,c)' -pred q
//
// With -tree the original and the normalized program are both run
// through the unified Compile API (honoring -engine and -O0/-O1) and
// must select the same nodes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	mdlog "mdlog"
	"mdlog/internal/cliflag"
	"mdlog/internal/tmnf"
)

// errFlagParse marks a flag error the FlagSet itself already
// reported on stderr; main exits nonzero without repeating it.
var errFlagParse = errors.New("flag parsing failed")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errFlagParse) {
			fmt.Fprintf(os.Stderr, "tmnf: %v\n", err)
		}
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tmnf", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		programFile = fs.String("program", "", "datalog program file (required)")
		stats       = fs.Bool("stats", false, "print size statistics instead of the program")
		treeArg     = fs.String("tree", "", "verify the transformation on this tree (term syntax)")
		predArg     = fs.String("pred", "", "query predicate for -tree verification")
		engineArg   = cliflag.Engine(fs)
		optArg      = cliflag.OptLevel(fs)
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage already printed, exit 0
		}
		return errFlagParse // the FlagSet already printed the error + usage
	}
	if *programFile == "" {
		return fmt.Errorf("missing -program")
	}
	engine, err := engineArg()
	if err != nil {
		return err
	}
	optLevel, err := optArg()
	if err != nil {
		return err
	}
	src, err := os.ReadFile(*programFile)
	if err != nil {
		return err
	}
	prog, err := mdlog.ParseProgram(string(src))
	if err != nil {
		return err
	}
	out, err := mdlog.ToTMNF(prog)
	if err != nil {
		return err
	}
	// Transform output is strict TMNF except for the bridging rules it
	// emits around propositional heads/atoms (which Definition 5.1
	// cannot express); IsNormalized validates exactly that contract.
	if err := tmnf.IsNormalized(out); err != nil {
		return fmt.Errorf("internal error, output not normalized: %v", err)
	}
	if *stats {
		fmt.Fprintf(stdout, "input rules:  %d\noutput rules: %d\n", len(prog.Rules), len(out.Rules))
		return nil
	}
	if *treeArg != "" {
		t, err := mdlog.ParseTree(*treeArg)
		if err != nil {
			return err
		}
		ctx := context.Background()
		opts := []mdlog.Option{mdlog.WithEngine(engine), mdlog.WithOptLevel(optLevel)}
		if *predArg != "" {
			opts = append(opts, mdlog.WithQueryPred(*predArg))
		}
		// Compile normalizes the original internally; compiling the
		// pre-normalized output must agree.
		oq, err := mdlog.CompileProgram(prog, opts...)
		if err != nil {
			return err
		}
		nq, err := mdlog.CompileProgram(out, opts...)
		if err != nil {
			return err
		}
		a, err := oq.Select(ctx, t)
		if err != nil {
			return err
		}
		b, err := nq.Select(ctx, t)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "original: %v\ntmnf:     %v\n", a, b)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			return fmt.Errorf("selection mismatch")
		}
		return nil
	}
	fmt.Fprint(stdout, out.String())
	return nil
}
