// Command tmnf normalizes a monadic datalog program over
// τ_ur ∪ {child, lastchild} into Tree-Marking Normal Form
// (Theorem 5.2) and prints the result:
//
//	tmnf -program wrapper.dl
package main

import (
	"flag"
	"fmt"
	"os"

	"mdlog/internal/datalog"
	"mdlog/internal/tmnf"
)

func main() {
	programFile := flag.String("program", "", "datalog program file (required)")
	stats := flag.Bool("stats", false, "print size statistics instead of the program")
	flag.Parse()
	if *programFile == "" {
		fmt.Fprintln(os.Stderr, "tmnf: missing -program")
		os.Exit(1)
	}
	src, err := os.ReadFile(*programFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmnf: %v\n", err)
		os.Exit(1)
	}
	prog, err := datalog.ParseProgram(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmnf: %v\n", err)
		os.Exit(1)
	}
	out, err := tmnf.Transform(prog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmnf: %v\n", err)
		os.Exit(1)
	}
	if err := tmnf.IsTMNF(out); err != nil {
		fmt.Fprintf(os.Stderr, "tmnf: internal error, output not TMNF: %v\n", err)
		os.Exit(1)
	}
	if *stats {
		fmt.Printf("input rules:  %d\noutput rules: %d\n", len(prog.Rules), len(out.Rules))
		return
	}
	fmt.Print(out.String())
}
