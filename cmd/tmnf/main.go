// Command tmnf normalizes a monadic datalog program over
// τ_ur ∪ {child, lastchild} into Tree-Marking Normal Form
// (Theorem 5.2) and prints the result:
//
//	tmnf -program wrapper.dl
//	tmnf -program wrapper.dl -tree 'a(b,c)' -pred q
//
// With -tree the original and the normalized program are both run
// through the unified Compile API and must select the same nodes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	mdlog "mdlog"
)

func main() {
	programFile := flag.String("program", "", "datalog program file (required)")
	stats := flag.Bool("stats", false, "print size statistics instead of the program")
	treeArg := flag.String("tree", "", "verify the transformation on this tree (term syntax)")
	predArg := flag.String("pred", "", "query predicate for -tree verification")
	flag.Parse()
	if *programFile == "" {
		fail("missing -program")
	}
	src, err := os.ReadFile(*programFile)
	if err != nil {
		fail("%v", err)
	}
	prog, err := mdlog.ParseProgram(string(src))
	if err != nil {
		fail("%v", err)
	}
	out, err := mdlog.ToTMNF(prog)
	if err != nil {
		fail("%v", err)
	}
	if err := mdlog.IsTMNF(out); err != nil {
		fail("internal error, output not TMNF: %v", err)
	}
	if *stats {
		fmt.Printf("input rules:  %d\noutput rules: %d\n", len(prog.Rules), len(out.Rules))
		return
	}
	if *treeArg != "" {
		t, err := mdlog.ParseTree(*treeArg)
		if err != nil {
			fail("%v", err)
		}
		ctx := context.Background()
		opts := []mdlog.Option{}
		if *predArg != "" {
			opts = append(opts, mdlog.WithQueryPred(*predArg))
		}
		// Compile normalizes the original internally; compiling the
		// pre-normalized output must agree.
		oq, err := mdlog.CompileProgram(prog, opts...)
		if err != nil {
			fail("%v", err)
		}
		nq, err := mdlog.CompileProgram(out, opts...)
		if err != nil {
			fail("%v", err)
		}
		a, err := oq.Select(ctx, t)
		if err != nil {
			fail("%v", err)
		}
		b, err := nq.Select(ctx, t)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("original: %v\ntmnf:     %v\n", a, b)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			fail("selection mismatch")
		}
		return
	}
	fmt.Print(out.String())
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tmnf: "+format+"\n", args...)
	os.Exit(1)
}
