package main

// CLI smoke tests: run() with golden output (regenerate with
// `go test ./cmd/tmnf -update`). The full program print is not
// goldened — helper-name assignment depends on rewrite order — but
// the size statistics and the -tree verification output are stable.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, golden string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", golden)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestGoldenStats(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-program", "testdata/wrapper.dl", "-stats"}, &out, &errb); err != nil {
		t.Fatalf("%v (stderr: %s)", err, errb.String())
	}
	checkGolden(t, "wrapper_stats.golden", out.Bytes())
}

func TestGoldenVerifyOnTree(t *testing.T) {
	for _, o := range []string{"-O0", "-O1"} {
		var out, errb bytes.Buffer
		args := []string{"-program", "testdata/wrapper.dl", "-tree", "a(td(b),td(c),td(b))", "-pred", "q", o}
		if err := run(args, &out, &errb); err != nil {
			t.Fatalf("%s: %v (stderr: %s)", o, err, errb.String())
		}
		checkGolden(t, "wrapper_verify.golden", out.Bytes())
	}
}

// TestPropositionalProgram pins the bridging path: a program with a
// propositional helper (legal monadic datalog, outside Definition
// 5.1's syntax) must normalize and verify instead of tripping the
// output validator.
func TestPropositionalProgram(t *testing.T) {
	dir := t.TempDir()
	prog := filepath.Join(dir, "prop.dl")
	src := "p(X) :- child(X,Y), label_a(Y), s0.\ns0 :- root(X), label_b(X).\n?- p.\n"
	if err := os.WriteFile(prog, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-program", prog, "-stats"}, &out, &errb); err != nil {
		t.Fatalf("%v (stderr: %s)", err, errb.String())
	}
	out.Reset()
	if err := run([]string{"-program", prog, "-tree", "b(a,b(a))", "-pred", "p"}, &out, &errb); err != nil {
		t.Fatalf("verify: %v (stderr: %s)", err, errb.String())
	}
	if got := out.String(); !strings.Contains(got, "original: [0 2]") {
		t.Errorf("unexpected verification output:\n%s", got)
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(nil, &out, &errb); err == nil {
		t.Error("want an error without -program")
	}
	if err := run([]string{"-h"}, &out, &errb); err != nil {
		t.Errorf("-h should print usage and succeed, got %v", err)
	}
	err := run([]string{"-program", "testdata/wrapper.dl", "-engine", "bogus"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "valid engines: linear, bitmap, seminaive, naive, lit") {
		t.Errorf("unknown -engine must name the valid options, got %v", err)
	}
	if err := run([]string{"-program", "testdata/wrapper.dl", "-O", "9"}, &out, &errb); err == nil {
		t.Error("want an error for a bad -O level")
	}
	if err := run([]string{"-program", "testdata/wrapper.dl", "-O0", "-O1"}, &out, &errb); err == nil {
		t.Error("-O0 together with -O1 must error")
	}
}
