package mdlog

// The unified compile-once / run-many query API. The paper proves six
// formalisms equivalent in expressive power; this file makes them
// equivalent in use: every source language compiles through
// Compile(src, lang) into one CompiledQuery value whose Select / Eval
// / Wrap methods execute a prepared plan against any number of
// documents, concurrently, with per-document state memoized in a
// TreeCache. See DESIGN.md for the architecture.

import (
	"context"
	"fmt"
	"slices"
	"strings"
	"sync/atomic"
	"time"

	"mdlog/internal/caterpillar"
	"mdlog/internal/datalog"
	"mdlog/internal/elog"
	"mdlog/internal/eval"
	"mdlog/internal/mso"
	"mdlog/internal/opt"
	"mdlog/internal/span"
	"mdlog/internal/tmnf"
	"mdlog/internal/tree"
	"mdlog/internal/wrap"
	"mdlog/internal/xpath"
)

// Language enumerates the query formalisms Compile accepts — the six
// languages the paper relates (query automata arrive via their
// ToDatalog translations and LangDatalog) plus LangSpanner, the
// span-extraction front end layered on top of them.
type Language int

const (
	// langInvalid is the zero value, deliberately not a real language:
	// an unset Language (a JSON wrapper spec missing its "lang" field,
	// an uninitialized struct) must fail compilation loudly rather
	// than silently meaning datalog.
	langInvalid Language = iota
	// LangDatalog is monadic datalog over τ_ur ∪ {child, lastchild}
	// (Section 3); programs using child/2 are normalized to TMNF for
	// the linear engine (Theorem 5.2).
	LangDatalog
	// LangTMNF is monadic datalog already in Tree-Marking Normal Form
	// (Definition 5.1); Compile validates the shape instead of
	// normalizing.
	LangTMNF
	// LangMSO is a unary MSO formula φ(x) compiled to a deterministic
	// tree automaton (Theorem 4.4).
	LangMSO
	// LangXPath is Core XPath (Section 7 remark); positive queries are
	// translated to monadic datalog and TMNF, queries using not(·)
	// fall back to the direct evaluator.
	LangXPath
	// LangCaterpillar is a caterpillar expression E evaluated as the
	// unary query root.E (Corollary 5.12).
	LangCaterpillar
	// LangElog is Elog⁻ / Elog⁻Δ (Section 6); Elog⁻ compiles through
	// datalog and TMNF (Corollary 6.4), Δ programs use the direct
	// evaluator.
	LangElog
	// LangSpanner is the document-spanner front end: monadic-datalog
	// node selection combined with span rules whose regex formulas run
	// as variable-set automata over node text and attribute values (see
	// internal/span). Results are span relations, read via
	// CompiledQuery.Spans rather than Select.
	LangSpanner
)

// languageNames is the single source of truth for the language list:
// String, ParseLanguage, MarshalText, and the CLI -lang help all
// derive from it, so adding a language is one entry here.
var languageNames = []struct {
	lang Language
	name string
}{
	{LangDatalog, "datalog"},
	{LangTMNF, "tmnf"},
	{LangMSO, "mso"},
	{LangXPath, "xpath"},
	{LangCaterpillar, "caterpillar"},
	{LangElog, "elog"},
	{LangSpanner, "spanner"},
}

// LanguageNames returns the flag names of every supported language in
// canonical order — the values ParseLanguage accepts. CLI help strings
// should derive from this rather than hard-coding the list.
func LanguageNames() []string {
	out := make([]string, len(languageNames))
	for i, e := range languageNames {
		out[i] = e.name
	}
	return out
}

// languageList renders the language names for error and help text,
// e.g. "datalog, tmnf, mso, xpath, caterpillar, elog or spanner".
func languageList() string {
	names := LanguageNames()
	return strings.Join(names[:len(names)-1], ", ") + " or " + names[len(names)-1]
}

// String names the language for CLI flags and error messages.
func (l Language) String() string {
	for _, e := range languageNames {
		if e.lang == l {
			return e.name
		}
	}
	return fmt.Sprintf("Language(%d)", int(l))
}

// ParseLanguage converts a CLI flag value into a Language.
func ParseLanguage(s string) (Language, error) {
	for _, e := range languageNames {
		if s == e.name {
			return e.lang, nil
		}
	}
	return 0, fmt.Errorf("mdlog: unknown language %q (want %s)", s, languageList())
}

// MarshalText implements encoding.TextMarshaler, so a Language field
// serializes as its flag name ("elog", "xpath", ...) in JSON configs.
func (l Language) MarshalText() ([]byte, error) {
	s := l.String()
	if _, err := ParseLanguage(s); err != nil {
		return nil, err
	}
	return []byte(s), nil
}

// UnmarshalText implements encoding.TextUnmarshaler (the inverse of
// MarshalText), accepting the ParseLanguage names.
func (l *Language) UnmarshalText(b []byte) error {
	v, err := ParseLanguage(string(b))
	if err != nil {
		return err
	}
	*l = v
	return nil
}

// Stats is the per-query / per-run timing and fact-count record.
type Stats = eval.Stats

// TreeCache memoizes per-document evaluation state (navigation
// arrays, materialized tree databases) across runs and across queries
// sharing the cache.
type TreeCache = eval.TreeCache

// CacheStats is a snapshot of a TreeCache's contents and traffic (see
// TreeCache.Stats): cached trees, memoized per-(query, tree) results,
// hit/miss counts, and results evicted to enforce the per-tree bound.
type CacheStats = eval.CacheStats

// NewTreeCache builds a cache retaining state for up to maxTrees
// documents (≤ 0: unbounded).
func NewTreeCache(maxTrees int) *TreeCache { return eval.NewTreeCache(maxTrees) }

// WrapOptions controls output-tree construction for Wrap.
type WrapOptions = wrap.Options

// DefaultQueryPred is the query predicate name used for languages
// without a natural one (MSO, XPath, caterpillar) unless WithQueryPred
// overrides it.
const DefaultQueryPred = "q"

// DefaultCacheTrees bounds the per-query TreeCache created when no
// WithCache/WithoutCache option is given: state for at most this many
// distinct documents is retained, so streaming millions of
// seen-once pages through a query cannot grow memory without bound.
// Pass WithCache(NewTreeCache(0)) for an unbounded cache.
const DefaultCacheTrees = 256

// OptLevel selects how aggressively the compile-time optimizer
// (internal/opt) rewrites datalog-routed plans before evaluation:
// OptNone disables it, OptFull (the default) runs goal-directed
// dead-rule elimination, single-use predicate inlining, duplicate-rule
// removal and redundant-atom/label-test deduplication. Every level
// preserves the visible relations; see DESIGN.md §optimizer.
type OptLevel = opt.Level

const (
	// OptNone (-O0) disables the optimizer pipeline.
	OptNone OptLevel = opt.O0
	// OptFull (-O1) enables every optimizer pass (the default).
	OptFull OptLevel = opt.O1
)

// ParseOptLevel converts a CLI flag value ("0", "1", "O0", "O1") into
// an OptLevel.
func ParseOptLevel(s string) (OptLevel, error) { return opt.ParseLevel(s) }

// OptReport describes what the optimizer did to one compiled query:
// rule/atom counts before and after, and per-pass removal counters.
// The zero value means the plan did not route through the optimizer
// (MSO automata and the direct evaluators).
type OptReport = opt.Report

// Option configures Compile.
type Option func(*compileConfig)

type compileConfig struct {
	engine    Engine
	queryPred string
	extract   []string
	wrapOpts  WrapOptions
	cache     *TreeCache
	noCache   bool
	optLevel  OptLevel
}

// WithEngine selects the datalog evaluation engine (default
// EngineLinear). Only plans that execute datalog honor it; the MSO
// automaton and the direct XPath/Elog⁻Δ evaluators ignore it. The
// grounding engines (EngineLinear, EngineBitmap) apply to every
// datalog-routed language; the set-oriented engines (seminaive,
// naive, lit) apply to datalog and Elog⁻ sources. An Engine value
// outside the defined set fails compilation (no silent fallback).
func WithEngine(e Engine) Option { return func(c *compileConfig) { c.engine = e } }

// WithQueryPred sets the predicate Select reads (default: the
// program's distinguished query predicate, the single Elog extraction
// pattern, or DefaultQueryPred for MSO/XPath/caterpillar).
func WithQueryPred(pred string) Option { return func(c *compileConfig) { c.queryPred = pred } }

// WithExtract restricts the predicates / patterns Wrap extracts.
func WithExtract(preds ...string) Option { return func(c *compileConfig) { c.extract = preds } }

// WithWrapOptions sets output-tree construction options for Wrap.
func WithWrapOptions(o WrapOptions) Option { return func(c *compileConfig) { c.wrapOpts = o } }

// WithCache shares a TreeCache between several compiled queries, so
// documents are materialized once for all of them.
func WithCache(tc *TreeCache) Option { return func(c *compileConfig) { c.cache = tc } }

// WithoutCache disables per-document memoization: every run rebuilds
// its navigation arrays and tree database.
func WithoutCache() Option { return func(c *compileConfig) { c.noCache = true } }

// WithOptLevel sets the compile-time optimization level (default
// OptFull). Only plans that execute datalog are affected; the MSO
// automaton and the direct XPath/Elog⁻Δ evaluators have no rules to
// rewrite.
func WithOptLevel(l OptLevel) Option { return func(c *compileConfig) { c.optLevel = l } }

// queryPlan is a prepared, immutable execution strategy. run returns
// the visible result relations for one document plus per-run
// measurements; implementations must be safe for concurrent use.
// engineName identifies the executor for stats attribution (the
// datalog engine name, "automaton", or a *-direct evaluator).
type queryPlan interface {
	run(ctx context.Context, t *Tree, cache *TreeCache) (*Database, Stats, error)
	engineName() string
}

// CompiledQuery is a query parsed, normalized and planned exactly
// once, ready for repeated and concurrent execution over documents.
// All methods are safe for concurrent use by multiple goroutines.
type CompiledQuery struct {
	lang      Language
	src       string
	queryPred string // "" if the language provides none and no option was given
	extract   []string
	wrapOpts  WrapOptions
	cache     *TreeCache
	plan      queryPlan
	optReport OptReport
	// memoKey keys this query's entries in the TreeCache result memo.
	// Datalog-routed plans use a planKey hashing the α-canonical form
	// of the post-optimization program (opt.Canonicalize), so queries
	// whose prepared plans coincide up to rule order and variable
	// naming share memoized results, while optimized/unoptimized
	// variants of the same source never alias. Plans without a datalog
	// program fall back to the query's own identity.
	memoKey any

	agg aggStats
}

// aggStats accumulates a query's lifetime statistics with atomic
// counters: record sits on the hot path of every run, and under a
// 16-way Runner fan-out a mutex here serializes otherwise independent
// workers. Parse/Compile are written once during compilation (before
// the owning value escapes to other goroutines) and only read after,
// so plain stores/loads through atomics keep the race detector and the
// memory model happy without a lock anywhere.
type aggStats struct {
	parse, compile       atomic.Int64 // ns, written at compile time
	materialize, eval    atomic.Int64 // ns, accumulated per run
	facts, runs          atomic.Int64
	cacheHits, fusedRuns atomic.Int64
	subsumedRuns         atomic.Int64
	spans                atomic.Int64
}

// record folds one run's measurements into the aggregate. Runs is
// incremented BEFORE the counters bounded by it; together with
// snapshot's reverse load order this keeps any per-record invariant
// of the form counter ≤ Runs intact in every snapshot, even ones
// concurrent with a record. (For a CompiledQuery each record carries
// at most one cache hit and one fused run per run, so CacheHits ≤
// Runs and FusedRuns ≤ Runs hold; a QuerySet record folds many
// members' cache hits into one set-level run, so only FusedRuns ≤
// Runs holds there.)
func (a *aggStats) record(rs Stats) {
	a.materialize.Add(int64(rs.Materialize))
	a.eval.Add(int64(rs.Eval))
	a.facts.Add(rs.Facts)
	a.runs.Add(rs.Runs)
	a.cacheHits.Add(rs.CacheHits)
	a.fusedRuns.Add(rs.FusedRuns)
	a.subsumedRuns.Add(rs.SubsumedRuns)
	a.spans.Add(rs.Spans)
}

// snapshot assembles the aggregate into a Stats value. The counters
// bounded per record (FusedRuns, CacheHits) are loaded before Runs —
// Go atomics are sequentially consistent, so any bounded increment
// this snapshot observes has its preceding Runs increment observed
// too, preserving record's ≤ Runs invariants without a lock.
// Unrelated fields can still tear against each other; the per-field
// totals are each exact.
func (a *aggStats) snapshot() Stats {
	subsumedRuns := a.subsumedRuns.Load()
	fusedRuns := a.fusedRuns.Load()
	cacheHits := a.cacheHits.Load()
	return Stats{
		Parse:        time.Duration(a.parse.Load()),
		Compile:      time.Duration(a.compile.Load()),
		Materialize:  time.Duration(a.materialize.Load()),
		Eval:         time.Duration(a.eval.Load()),
		Facts:        a.facts.Load(),
		Runs:         a.runs.Load(),
		CacheHits:    cacheHits,
		FusedRuns:    fusedRuns,
		SubsumedRuns: subsumedRuns,
		Spans:        a.spans.Load(),
	}
}

// planKey is the TreeCache result-memo key of a datalog-routed plan: a
// fingerprint of the post-optimization program plus engine and
// projection context, with the rule count mixed in as a collision
// backstop.
type planKey struct {
	hash  uint64
	rules int
}

func newPlanKey(p *Program, engine Engine, project []string) planKey {
	extra := append([]string{engine.String()}, project...)
	c := opt.Canonicalize(p, extra...)
	return planKey{hash: c.Hash, rules: c.Rules}
}

// Compile parses src in the given language, normalizes it onto one of
// the engine-ready forms (datalog plan, tree automaton, or direct
// evaluator), and prepares the execution plan. The result amortizes
// all of that across every later Select / Eval / Wrap call.
func Compile(src string, lang Language, opts ...Option) (*CompiledQuery, error) {
	start := time.Now()
	build, err := parseSource(src, lang, opts)
	if err != nil {
		return nil, err
	}
	parse := time.Since(start)
	q, err := build()
	if err != nil {
		return nil, err
	}
	q.src = src
	q.setParse(parse)
	return q, nil
}

// parseSource parses src and returns the deferred AST-level compile
// step, so Compile has exactly one success path for all languages.
func parseSource(src string, lang Language, opts []Option) (func() (*CompiledQuery, error), error) {
	switch lang {
	case LangDatalog, LangTMNF:
		p, err := datalog.ParseProgram(src)
		if err != nil {
			return nil, err
		}
		return func() (*CompiledQuery, error) { return compileDatalog(p, lang, newConfig(opts)) }, nil
	case LangMSO:
		f, err := mso.Parse(src)
		if err != nil {
			return nil, err
		}
		return func() (*CompiledQuery, error) { return CompileMSO(f, opts...) }, nil
	case LangXPath:
		x, err := xpath.Parse(src)
		if err != nil {
			return nil, err
		}
		return func() (*CompiledQuery, error) { return CompileXPath(x, opts...) }, nil
	case LangCaterpillar:
		e, err := caterpillar.Parse(src)
		if err != nil {
			return nil, err
		}
		return func() (*CompiledQuery, error) { return CompileCaterpillar(e, opts...) }, nil
	case LangElog:
		p, err := elog.ParseProgram(src)
		if err != nil {
			return nil, err
		}
		return func() (*CompiledQuery, error) { return CompileElog(p, opts...) }, nil
	case LangSpanner:
		p, err := span.ParseProgram(src)
		if err != nil {
			return nil, err
		}
		return func() (*CompiledQuery, error) { return CompileSpanner(p, opts...) }, nil
	}
	if lang == langInvalid {
		return nil, fmt.Errorf("mdlog: no query language specified (want %s)", languageList())
	}
	return nil, fmt.Errorf("mdlog: unknown language %v", lang)
}

func newConfig(opts []Option) *compileConfig {
	cfg := &compileConfig{engine: EngineLinear, optLevel: OptFull}
	for _, o := range opts {
		o(cfg)
	}
	return cfg
}

// visiblePreds computes the predicates whose extensions a caller can
// observe through Eval/Select/Wrap: the extraction list (WithExtract,
// defaulting to every intensional predicate of the source program)
// plus the distinguished query predicate. This set is both the
// optimizer's root set — everything else is fair game for elimination
// and inlining — and the projection applied to engine results, so all
// engines expose the same relations (normalization and splitting
// helpers such as tm_*/conn_* never leak).
func visiblePreds(p *Program, cfg *compileConfig, all []string) []string {
	var vis []string
	if len(cfg.extract) > 0 {
		vis = append(vis, cfg.extract...)
	} else {
		vis = append(vis, all...)
	}
	for _, pred := range []string{cfg.queryPred, p.Query} {
		if pred != "" && !slices.Contains(vis, pred) {
			vis = append(vis, pred)
		}
	}
	return vis
}

func (cfg *compileConfig) newQuery(lang Language, plan queryPlan, queryPred string, extract []string) *CompiledQuery {
	cache := cfg.cache
	if cache == nil && !cfg.noCache {
		cache = NewTreeCache(DefaultCacheTrees)
	}
	if cfg.queryPred != "" {
		queryPred = cfg.queryPred
	}
	if len(cfg.extract) > 0 {
		extract = cfg.extract
	}
	q := &CompiledQuery{
		lang:      lang,
		queryPred: queryPred,
		extract:   extract,
		wrapOpts:  cfg.wrapOpts,
		cache:     cache,
		plan:      plan,
	}
	q.memoKey = q
	return q
}

func (q *CompiledQuery) setParse(d time.Duration) { q.agg.parse.Store(int64(d)) }

func (q *CompiledQuery) setCompile(d time.Duration) { q.agg.compile.Store(int64(d)) }

// CompileProgram prepares an already-parsed monadic datalog program
// (the AST-level twin of Compile(src, LangDatalog)).
func CompileProgram(p *Program, opts ...Option) (*CompiledQuery, error) {
	return compileDatalog(p, LangDatalog, newConfig(opts))
}

// checkEngine rejects Engine values outside the defined set at
// compile time, naming the valid engines — an unknown engine must
// never defer its failure to the first run (or silently fall back).
func (cfg *compileConfig) checkEngine() error {
	if !eval.ValidEngine(cfg.engine) {
		return fmt.Errorf("mdlog: unknown engine %v (valid engines: %s)",
			cfg.engine, strings.Join(eval.EngineNames(), ", "))
	}
	return nil
}

// isGroundingEngine reports whether the engine executes prepared
// Theorem 4.2 grounding plans (per-rule anchor propagation) rather
// than set-oriented relational evaluation.
func isGroundingEngine(e Engine) bool { return e == EngineLinear || e == EngineBitmap }

// groundPlan prepares an already-normalized program for one of the
// two grounding engines: the Theorem 4.2 linear engine or its
// columnar bitmap counterpart.
func groundPlan(np *Program, engine Engine, project []string) (queryPlan, error) {
	if engine == EngineBitmap {
		bp, err := eval.NewBitmapPlan(np)
		if err != nil {
			return nil, err
		}
		return &bitmapPlan{plan: bp, project: project}, nil
	}
	pl, err := eval.NewPlan(np)
	if err != nil {
		return nil, err
	}
	return &linearPlan{plan: pl, project: project}, nil
}

func compileDatalog(p *Program, lang Language, cfg *compileConfig) (*CompiledQuery, error) {
	start := time.Now()
	if err := cfg.checkEngine(); err != nil {
		return nil, err
	}
	extract := p.IntensionalPreds()
	if lang == LangTMNF {
		if err := tmnf.IsTMNF(p); err != nil {
			return nil, err
		}
	}
	visible := visiblePreds(p, cfg, extract)
	var plan queryPlan
	var report OptReport
	var memoKey any
	if isGroundingEngine(cfg.engine) {
		np := p
		// Normalize: the grounding engines cannot use child/2 (no
		// functional dependency, Proposition 4.1); Theorem 5.2
		// eliminates it. The visible-predicate projection keeps the
		// tm_* auxiliaries out of the result relations.
		if lang == LangDatalog && eval.SignatureOf(p).Child {
			tp, err := tmnf.Transform(p)
			if err != nil {
				return nil, err
			}
			np = tp
		}
		np, report = opt.Optimize(np, opt.Options{Level: cfg.optLevel, Roots: visible})
		pl, err := groundPlan(np, cfg.engine, visible)
		if err != nil {
			return nil, err
		}
		plan = pl
		memoKey = newPlanKey(np, cfg.engine, visible)
	} else {
		if err := p.Check(); err != nil {
			return nil, err
		}
		// The set-oriented engines admit programs by rule shape
		// (Datalog LIT most strictly), so the optimizer must not fuse
		// rules here; the goal-directed and deduplication passes still
		// apply.
		op, rep := opt.Optimize(p, opt.Options{Level: cfg.optLevel, Roots: visible, KeepShape: true})
		report = rep
		plan = &genericPlan{prog: op, engine: cfg.engine, sig: eval.GenericSignature(op), project: visible}
		memoKey = newPlanKey(op, cfg.engine, visible)
	}
	q := cfg.newQuery(lang, plan, p.Query, extract)
	q.optReport = report
	q.memoKey = memoKey
	q.setCompile(time.Since(start))
	return q, nil
}

// CompileMSO prepares an already-parsed unary MSO formula.
func CompileMSO(f MSOFormula, opts ...Option) (*CompiledQuery, error) {
	cfg := newConfig(opts)
	start := time.Now()
	if err := cfg.checkEngine(); err != nil {
		return nil, err
	}
	uq, err := mso.CompileQuery(f)
	if err != nil {
		return nil, err
	}
	pred := cfg.queryPred
	if pred == "" {
		pred = DefaultQueryPred
	}
	q := cfg.newQuery(LangMSO, &msoPlan{q: uq, pred: pred}, pred, []string{pred})
	q.setCompile(time.Since(start))
	return q, nil
}

// CompileXPath prepares an already-parsed Core XPath query.
func CompileXPath(x *XPath, opts ...Option) (*CompiledQuery, error) {
	cfg := newConfig(opts)
	start := time.Now()
	if err := cfg.checkEngine(); err != nil {
		return nil, err
	}
	pred := cfg.queryPred
	if pred == "" {
		pred = DefaultQueryPred
	}
	// XPath always routes through the TMNF translation, so only the
	// choice between the two grounding engines applies; the
	// set-oriented engines are ignored as documented on WithEngine.
	engine := EngineLinear
	if cfg.engine == EngineBitmap {
		engine = EngineBitmap
	}
	var plan queryPlan
	var report OptReport
	var memoKey any
	if x.HasNegation() {
		// not(·) has no positive datalog translation; use the direct
		// evaluator (reference semantics).
		plan = &xpathDirectPlan{x: x, pred: pred}
	} else {
		dp, err := xpath.ToDatalog(x, pred)
		if err != nil {
			return nil, err
		}
		tp, err := tmnf.Transform(dp)
		if err != nil {
			return nil, err
		}
		tp, report = opt.Optimize(tp, opt.Options{Level: cfg.optLevel, Roots: []string{pred}})
		pl, err := groundPlan(tp, engine, []string{pred})
		if err != nil {
			return nil, err
		}
		plan = pl
		memoKey = newPlanKey(tp, engine, []string{pred})
	}
	q := cfg.newQuery(LangXPath, plan, pred, []string{pred})
	q.optReport = report
	if memoKey != nil {
		q.memoKey = memoKey
	}
	q.setCompile(time.Since(start))
	return q, nil
}

// CompileCaterpillar prepares a caterpillar expression as the unary
// query root.E (Corollary 5.12).
func CompileCaterpillar(e CaterpillarExpr, opts ...Option) (*CompiledQuery, error) {
	cfg := newConfig(opts)
	start := time.Now()
	if err := cfg.checkEngine(); err != nil {
		return nil, err
	}
	pred := cfg.queryPred
	if pred == "" {
		pred = DefaultQueryPred
	}
	// As with XPath: grounding-engine choice applies, set-oriented
	// engines are ignored.
	engine := EngineLinear
	if cfg.engine == EngineBitmap {
		engine = EngineBitmap
	}
	cp := caterpillar.QueryProgram(e, pred)
	if eval.SignatureOf(cp).Child {
		tp, err := tmnf.Transform(cp)
		if err != nil {
			return nil, err
		}
		cp = tp
	}
	cp, report := opt.Optimize(cp, opt.Options{Level: cfg.optLevel, Roots: []string{pred}})
	pl, err := groundPlan(cp, engine, []string{pred})
	if err != nil {
		return nil, err
	}
	q := cfg.newQuery(LangCaterpillar, pl, pred, []string{pred})
	q.optReport = report
	q.memoKey = newPlanKey(cp, engine, []string{pred})
	q.setCompile(time.Since(start))
	return q, nil
}

// CompileElog prepares an already-parsed Elog⁻ / Elog⁻Δ program.
func CompileElog(p *ElogProgram, opts ...Option) (*CompiledQuery, error) {
	cfg := newConfig(opts)
	start := time.Now()
	if err := cfg.checkEngine(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	patterns := p.Patterns()
	// Effective extraction list: WithExtract > program Extract > all
	// patterns; a unique entry doubles as Select's distinguished
	// pattern (Select errors with guidance otherwise).
	extract := p.Extract
	if len(cfg.extract) > 0 {
		extract = cfg.extract
	}
	if len(extract) == 0 {
		extract = patterns
	}
	pred := ""
	if len(extract) == 1 {
		pred = extract[0]
	} else if len(patterns) == 1 {
		pred = patterns[0]
	}
	var plan queryPlan
	var report OptReport
	var memoKey any
	switch {
	case p.UsesDelta():
		plan = &elogDirectPlan{prog: p, patterns: patterns}
	case !isGroundingEngine(cfg.engine):
		// WithEngine routes the Theorem 6.4 datalog translation (which
		// may use child/2) through the set-oriented engines.
		dp, err := p.ToDatalog()
		if err != nil {
			return nil, err
		}
		dp, report = opt.Optimize(dp, opt.Options{Level: cfg.optLevel, Roots: patterns, KeepShape: true})
		plan = &genericPlan{prog: dp, engine: cfg.engine, sig: eval.GenericSignature(dp), project: patterns}
		memoKey = newPlanKey(dp, cfg.engine, patterns)
	default:
		dp, err := p.CompileLinear() // ToDatalog + TMNF (Corollary 6.4)
		if err != nil {
			return nil, err
		}
		dp, report = opt.Optimize(dp, opt.Options{Level: cfg.optLevel, Roots: patterns})
		pl, err := groundPlan(dp, cfg.engine, patterns)
		if err != nil {
			return nil, err
		}
		plan = pl
		memoKey = newPlanKey(dp, cfg.engine, patterns)
	}
	q := cfg.newQuery(LangElog, plan, pred, extract)
	q.optReport = report
	if memoKey != nil {
		q.memoKey = memoKey
	}
	q.setCompile(time.Since(start))
	return q, nil
}

// Language returns the source language the query was compiled from.
func (q *CompiledQuery) Language() Language { return q.lang }

// Source returns the source text, if the query came from Compile.
func (q *CompiledQuery) Source() string { return q.src }

// QueryPred returns the predicate Select reads ("" if undetermined).
func (q *CompiledQuery) QueryPred() string { return q.queryPred }

// ExtractPreds returns the predicates / patterns Wrap extracts.
func (q *CompiledQuery) ExtractPreds() []string { return append([]string(nil), q.extract...) }

// Cache returns the query's TreeCache (nil when compiled with
// WithoutCache), e.g. to Forget a mutated document.
func (q *CompiledQuery) Cache() *TreeCache { return q.cache }

// EngineName reports which engine executes this query's plan:
// a datalog engine name ("linear", "bitmap", "seminaive", ...) or one
// of the direct evaluators ("automaton", "xpath-direct",
// "elog-direct"). It is the value per-run Stats carry in Engine.
func (q *CompiledQuery) EngineName() string { return q.plan.engineName() }

// OptStats reports what the compile-time optimizer did to this query's
// plan (rules before/after, per-pass counters). The zero value means
// the plan did not route through datalog (MSO automaton, direct
// evaluators).
func (q *CompiledQuery) OptStats() OptReport { return q.optReport }

// Stats returns a snapshot of the query's aggregate statistics: the
// one-time parse/compile cost plus materialize/eval time, fact counts
// and cache hits accumulated over all runs so far. Engine is the
// query's plan engine — a compile-time property, so it attributes the
// whole aggregate (QuerySet fused passes run member plans on the
// fused plan's engine, which member compilation pins to the same
// value).
func (q *CompiledQuery) Stats() Stats {
	rs := q.agg.snapshot()
	rs.Engine = q.plan.engineName()
	return rs
}

func (q *CompiledQuery) record(rs Stats) { q.agg.record(rs) }

// Eval runs the plan on one document and returns the visible result
// relations (all intensional predicates for datalog programs, the
// query predicate for MSO/XPath/caterpillar, every pattern for Elog).
//
// The returned database may be shared with the query's result memo
// and with concurrent callers: treat it as read-only and Clone before
// mutating.
func (q *CompiledQuery) Eval(ctx context.Context, t *Tree) (*Database, error) {
	db, _, err := q.EvalStats(ctx, t)
	return db, err
}

// runCached consults the per-(query, tree) result memo before the
// plan: on an immutable document the plan is deterministic, so a
// repeat run is a map lookup (use TreeCache.Forget after mutating a
// document, or WithoutCache to opt out). The cached database is
// shared and must be treated as read-only.
func (q *CompiledQuery) runCached(ctx context.Context, t *Tree) (*Database, Stats, error) {
	return q.runCachedIn(ctx, t, q.cache)
}

// runCachedIn is runCached against an explicit cache instead of the
// query's own — a QuerySet routes its unfused members through the
// set's cache, so one Forget invalidates every member's state for a
// mutated document.
func (q *CompiledQuery) runCachedIn(ctx context.Context, t *Tree, cache *TreeCache) (*Database, Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	if cache != nil {
		if db, ok := cache.Result(t, q.memoKey); ok {
			return db, Stats{CacheHits: 1, Engine: q.plan.engineName()}, nil
		}
	}
	db, rs, err := q.plan.run(ctx, t, cache)
	if err == nil && cache != nil {
		cache.SetResult(t, q.memoKey, db)
	}
	return db, rs, err
}

// EvalStats is Eval returning per-run statistics. The returned
// database is shared (see Eval) — read-only.
func (q *CompiledQuery) EvalStats(ctx context.Context, t *Tree) (*Database, Stats, error) {
	db, rs, err := q.runCached(ctx, t)
	if err != nil {
		return nil, rs, err
	}
	rs.Runs = 1
	rs.Facts = int64(db.Size())
	q.record(rs)
	return db, rs, nil
}

// Select runs the plan on one document and returns the sorted
// document-order ids of the nodes its query predicate selects — the
// paper's unary-query interface, uniform across all seven languages
// (for a spanner it selects the node part's ?- predicate; Spans
// returns the span relations).
func (q *CompiledQuery) Select(ctx context.Context, t *Tree) ([]int, error) {
	ids, _, err := q.SelectStats(ctx, t)
	return ids, err
}

// SelectStats is Select returning per-run statistics.
func (q *CompiledQuery) SelectStats(ctx context.Context, t *Tree) ([]int, Stats, error) {
	if q.queryPred == "" {
		return nil, Stats{}, fmt.Errorf("mdlog: %v query has no distinguished query predicate; compile with WithQueryPred or add a ?- directive / Extract list", q.lang)
	}
	db, rs, err := q.runCached(ctx, t)
	if err != nil {
		return nil, rs, err
	}
	ids := db.UnarySet(q.queryPred)
	rs.Runs = 1
	rs.Facts = int64(len(ids))
	q.record(rs)
	return ids, rs, nil
}

// Wrap runs the plan as a wrapper (Section 6): the nodes selected by
// the extraction predicates are kept, relabeled by pattern name, and
// reconnected through the transitive closure of the edge relation.
func (q *CompiledQuery) Wrap(ctx context.Context, t *Tree) (*Tree, error) {
	out, _, err := q.WrapAssign(ctx, t)
	return out, err
}

// WrapAssign is Wrap also returning the pattern → nodes assignment.
func (q *CompiledQuery) WrapAssign(ctx context.Context, t *Tree) (*Tree, Assignment, error) {
	a, err := q.Assign(ctx, t)
	if err != nil {
		return nil, nil, err
	}
	return wrap.BuildOutput(t, a, q.wrapOpts), a, nil
}

// Assign runs the plan and returns only the pattern → nodes
// assignment — Wrap without constructing the output tree, for
// consumers (APIs, services) that serialize the assignment directly.
func (q *CompiledQuery) Assign(ctx context.Context, t *Tree) (Assignment, error) {
	db, rs, err := q.runCached(ctx, t)
	if err != nil {
		return nil, err
	}
	a := Assignment{}
	var facts int64
	for _, pred := range q.extract {
		if ids := db.UnarySet(pred); len(ids) > 0 {
			a[pred] = ids
			facts += int64(len(ids))
		}
	}
	rs.Runs = 1
	rs.Facts = facts
	q.record(rs)
	return a, nil
}

// ---------------------------------------------------------------------
// Plan implementations.

// linearPlan executes a prepared Theorem 4.2 plan; project restricts
// the visible predicates (nil: everything the program derives).
type linearPlan struct {
	plan    *eval.Plan
	project []string
}

func (p *linearPlan) engineName() string { return EngineLinear.String() }

func (p *linearPlan) run(ctx context.Context, t *Tree, cache *TreeCache) (*Database, Stats, error) {
	return runGrounding(ctx, t, cache, p.engineName(), p.project, p.plan.Run)
}

// bitmapPlan executes a prepared columnar bitmap plan — the same
// Theorem 4.2 fragment as linearPlan, evaluated as bulk bitset
// algebra over the arena columns.
type bitmapPlan struct {
	plan    *eval.BitmapPlan
	project []string
}

func (p *bitmapPlan) engineName() string { return EngineBitmap.String() }

func (p *bitmapPlan) run(ctx context.Context, t *Tree, cache *TreeCache) (*Database, Stats, error) {
	return runGrounding(ctx, t, cache, p.engineName(), p.project, p.plan.Run)
}

// runGrounding is the shared run path of the two grounding-engine
// plans: fetch or build the navigation arrays, execute the prepared
// plan, project the visible relations.
func runGrounding(ctx context.Context, t *Tree, cache *TreeCache, engine string, project []string,
	exec func(*eval.Nav) (*Database, error)) (*Database, Stats, error) {
	rs := Stats{Engine: engine}
	if err := ctx.Err(); err != nil {
		return nil, rs, err
	}
	var nav *eval.Nav
	start := time.Now()
	if cache != nil {
		var hit bool
		nav, hit = cache.NavCached(t)
		if hit {
			rs.CacheHits = 1
		}
	} else {
		nav = eval.NewNav(t)
	}
	rs.Materialize = time.Since(start)
	start = time.Now()
	db, err := exec(nav)
	rs.Eval = time.Since(start)
	if err != nil {
		return nil, rs, err
	}
	if project != nil {
		db = db.Project(project)
	}
	return db, rs, nil
}

// genericPlan routes through the set-oriented engines (semi-naive,
// naive, LIT) over a materialized — and memoized — tree database.
// project lists the visible predicates, so every engine (LIT's
// connected-splitting helpers included) exposes the same relations as
// the linear plan.
type genericPlan struct {
	prog    *datalog.Program
	engine  Engine
	sig     eval.Signature
	project []string
}

func (p *genericPlan) engineName() string { return p.engine.String() }

func (p *genericPlan) run(ctx context.Context, t *Tree, cache *TreeCache) (*Database, Stats, error) {
	rs := Stats{Engine: p.engineName()}
	if err := ctx.Err(); err != nil {
		return nil, rs, err
	}
	var edb *Database
	start := time.Now()
	if cache != nil {
		var hit bool
		edb, hit = cache.DBCached(t, p.sig)
		if hit {
			rs.CacheHits = 1
		}
	} else {
		edb = p.sig.TreeDB(t)
	}
	rs.Materialize = time.Since(start)
	start = time.Now()
	var full *Database
	var err error
	switch p.engine {
	case EngineSemiNaive:
		full, err = datalog.SemiNaiveEval(p.prog, edb)
	case EngineNaive:
		full, err = datalog.NaiveEval(p.prog, edb)
	case EngineLIT:
		full, err = eval.LITEval(p.prog, edb)
	default:
		err = fmt.Errorf("mdlog: engine %v is not supported by the generic plan", p.engine)
	}
	rs.Eval = time.Since(start)
	if err != nil {
		return nil, rs, err
	}
	if p.project != nil {
		full = full.Project(p.project)
	} else {
		full = full.Project(p.prog.IntensionalPreds())
	}
	return full, rs, nil
}

// msoPlan runs the compiled tree automaton (two linear passes).
type msoPlan struct {
	q    *MSOQuery
	pred string
}

func (p *msoPlan) engineName() string { return "automaton" }

func (p *msoPlan) run(ctx context.Context, t *Tree, _ *TreeCache) (*Database, Stats, error) {
	rs := Stats{Engine: p.engineName()}
	if err := ctx.Err(); err != nil {
		return nil, rs, err
	}
	start := time.Now()
	ids := p.q.Select(t)
	rs.Eval = time.Since(start)
	return unaryDB(t, p.pred, ids), rs, nil
}

// xpathDirectPlan runs the reference Core XPath evaluator (needed for
// not(·), which has no positive datalog translation).
type xpathDirectPlan struct {
	x    *XPath
	pred string
}

func (p *xpathDirectPlan) engineName() string { return "xpath-direct" }

func (p *xpathDirectPlan) run(ctx context.Context, t *Tree, _ *TreeCache) (*Database, Stats, error) {
	rs := Stats{Engine: p.engineName()}
	if err := ctx.Err(); err != nil {
		return nil, rs, err
	}
	start := time.Now()
	ids := xpath.Select(p.x, t)
	rs.Eval = time.Since(start)
	return unaryDB(t, p.pred, ids), rs, nil
}

// elogDirectPlan runs the native Elog⁻Δ fixpoint (Theorem 6.6 lives
// beyond MSO, so there is no datalog route).
type elogDirectPlan struct {
	prog     *ElogProgram
	patterns []string
}

func (p *elogDirectPlan) engineName() string { return "elog-direct" }

func (p *elogDirectPlan) run(ctx context.Context, t *Tree, _ *TreeCache) (*Database, Stats, error) {
	rs := Stats{Engine: p.engineName()}
	if err := ctx.Err(); err != nil {
		return nil, rs, err
	}
	start := time.Now()
	res, err := p.prog.EvalDirect(t)
	rs.Eval = time.Since(start)
	if err != nil {
		return nil, rs, err
	}
	db := datalog.NewDatabase(t.Size())
	for _, pat := range p.patterns {
		rel := db.Rel(pat, 1)
		for _, id := range res[pat] {
			rel.Add([]int{id})
		}
	}
	return db, rs, nil
}

func unaryDB(t *tree.Tree, pred string, ids []int) *Database {
	db := datalog.NewDatabase(t.Size())
	rel := db.Rel(pred, 1)
	for _, id := range ids {
		rel.Add([]int{id})
	}
	return db
}
