package mdlog

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"mdlog/internal/datalog"
	"mdlog/internal/eval"
	"mdlog/internal/tree"
)

// Cross-engine differential fuzzing: random monadic programs over the
// full extensional vocabulary × random trees, evaluated by every
// engine at every optimization level through the one Compile entry
// point. All engines must agree on every visible relation — this is
// the semantics net under the optimizer and the engine zoo.
//
// The default iteration count keeps `go test ./...` fast; `make
// fuzz-smoke` raises it via MDLOG_FUZZ_N for a bounded CI fuzzing run.

// fuzzIterations reads MDLOG_FUZZ_N (default 60 programs).
func fuzzIterations(t *testing.T) int {
	if s := os.Getenv("MDLOG_FUZZ_N"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad MDLOG_FUZZ_N=%q", s)
		}
		return n
	}
	if testing.Short() {
		return 15
	}
	return 60
}

// fuzzVocabulary is the generator's alphabet: every unary and binary
// extensional predicate the engines accept, including the ones with
// special-case handling (child/2 forces the Theorem 5.2 rewrite on the
// linear route, child_k exercises τ_rk, dom the trivially-true check).
var (
	fuzzUnaryEDB = []string{"root", "leaf", "lastsibling", "firstsibling", "dom", "label_a", "label_b"}
	fuzzBinEDB   = []string{"firstchild", "nextsibling", "lastchild", "child", "child_2"}
	fuzzIDB      = []string{"p0", "p1", "p2", "p3"}
	fuzzVars     = []string{"X", "Y", "Z", "W"}
)

// randomMonadicProgram generates a safe monadic program with query
// predicate p0. Bodies mix extensional atoms, intensional atoms and
// the occasional propositional helper; the head variable is always
// bound by the first atom, and rules that end up unsafe are discarded.
func randomMonadicProgram(rng *rand.Rand) *datalog.Program {
	V, At, R := datalog.V, datalog.At, datalog.R
	p := &datalog.Program{Query: "p0"}
	nRules := 2 + rng.Intn(7)
	for len(p.Rules) < nRules {
		var head datalog.Atom
		if rng.Intn(8) == 0 {
			head = At("s" + strconv.Itoa(rng.Intn(2))) // propositional helper
		} else {
			head = At(fuzzIDB[rng.Intn(len(fuzzIDB))], V("X"))
		}
		var body []datalog.Atom
		add := func(v string) {
			switch rng.Intn(5) {
			case 0, 1:
				body = append(body, At(fuzzUnaryEDB[rng.Intn(len(fuzzUnaryEDB))], V(v)))
			case 2, 3:
				w := fuzzVars[rng.Intn(len(fuzzVars))]
				body = append(body, At(fuzzBinEDB[rng.Intn(len(fuzzBinEDB))], V(v), V(w)))
			default:
				body = append(body, At(fuzzIDB[rng.Intn(len(fuzzIDB))], V(v)))
			}
		}
		add("X") // bind the head variable first
		for extra := rng.Intn(3); extra > 0; extra-- {
			add(fuzzVars[rng.Intn(len(fuzzVars))])
		}
		if rng.Intn(6) == 0 {
			body = append(body, At("s"+strconv.Itoa(rng.Intn(2))))
		}
		r := R(head, body...)
		if r.IsSafe() {
			p.Add(r)
		}
	}
	return p
}

// evalThrough compiles p for one engine/level and evaluates it on tr,
// returning the visible relations.
func evalThrough(ctx context.Context, p *Program, tr *Tree, e Engine, lvl OptLevel, extract []string) (*Database, error) {
	opts := []Option{WithEngine(e), WithOptLevel(lvl), WithoutCache()}
	if len(extract) > 0 {
		opts = append(opts, WithExtract(extract...))
	}
	q, err := CompileProgram(p.Clone(), opts...)
	if err != nil {
		return nil, err
	}
	return q.Eval(ctx, tr)
}

// litOutOfFragment recognizes the LIT engine's documented rejection of
// programs outside Datalog LIT (Proposition 3.7) — a domain
// difference, not a divergence.
func litOutOfFragment(err error) bool {
	return err != nil && strings.Contains(err.Error(), "not in Datalog LIT")
}

// fuzzSeed reads MDLOG_FUZZ_SEED (default 1234), so a CI fuzzing run
// can explore fresh program/tree pairs while plain `go test` stays
// deterministic.
func fuzzSeed(t *testing.T) int64 {
	s := os.Getenv("MDLOG_FUZZ_SEED")
	if s == "" {
		return 1234
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("bad MDLOG_FUZZ_SEED=%q", s)
	}
	return n
}

// fuzzFusedSet builds a QuerySet over the generated programs at one
// optimization level, with every member on the given grounding engine,
// and requires every member's fused result to match its individual
// evaluation — all programs share the p0..p3/s0..s1 namespace, so this
// doubles as an apex-renaming capture test.
func fuzzFusedSet(t *testing.T, ctx context.Context, caseNo int, progs []*Program, tr *Tree, lvl OptLevel, engine Engine) {
	t.Helper()
	queries := make([]*CompiledQuery, len(progs))
	for j, p := range progs {
		q, err := CompileProgram(p.Clone(), WithOptLevel(lvl), WithEngine(engine), WithoutCache())
		if err != nil {
			t.Fatalf("case %d: compiling set member %d at %v/%v: %v\nprogram:\n%s", caseNo, j, engine, lvl, err, p)
		}
		queries[j] = q
	}
	set, err := NewQuerySet(queries...)
	if err != nil {
		t.Fatalf("case %d: fusing at %v/%v: %v", caseNo, engine, lvl, err)
	}
	if set.FusedLen() != len(progs) {
		t.Fatalf("case %d: fused %d of %d %v members", caseNo, set.FusedLen(), len(progs), engine)
	}
	results := set.Run(ctx, tr)
	for j, res := range results {
		if res.Err != nil {
			t.Fatalf("case %d: fused member %d at %v/%v: %v\nprogram:\n%s", caseNo, j, engine, lvl, res.Err, progs[j])
		}
		// An all-bitmap set must run its shared pass on the bitmap
		// engine (and an all-linear one on linear).
		if res.Stats.Engine != engine.String() {
			t.Fatalf("case %d: fused member %d served by %q, want %q", caseNo, j, res.Stats.Engine, engine)
		}
		ind, err := queries[j].Eval(ctx, tr)
		if err != nil {
			t.Fatalf("case %d: individual member %d at %v: %v", caseNo, j, lvl, err)
		}
		for _, pred := range progs[j].IntensionalPreds() {
			want := ind.UnarySet(pred)
			got := res.Assignment[pred]
			if fmt.Sprint(got) != fmt.Sprint(want) && (len(got) > 0 || len(want) > 0) {
				t.Fatalf("case %d: fused member %d at %v: %s = %v, individual %v\nprogram:\n%s\ntree: %s",
					caseNo, j, lvl, pred, got, want, progs[j], tr)
			}
		}
	}
}

func TestDifferentialEngines(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(fuzzSeed(t)))
	engines := []Engine{EngineLinear, EngineBitmap, EngineSemiNaive, EngineNaive, EngineLIT}
	levels := []OptLevel{OptNone, OptFull}
	iters := fuzzIterations(t)

	for i := 0; i < iters; i++ {
		p := randomMonadicProgram(rng)
		preds := p.IntensionalPreds()
		// Two more programs over the same predicate namespace for the
		// fused-set differential below.
		setMates := []*Program{p, randomMonadicProgram(rng), randomMonadicProgram(rng)}
		for d := 0; d < 2; d++ {
			tr := tree.Random(rng, tree.RandomOptions{
				Labels: []string{"a", "b", "c"}, Size: 15 + rng.Intn(45), MaxChildren: 5})

			// Reference semantics: the naive fixpoint without optimization.
			ref, err := evalThrough(ctx, p, tr, EngineNaive, OptNone, nil)
			if err != nil {
				t.Fatalf("case %d: reference engine failed: %v\nprogram:\n%s", i, err, p)
			}
			for _, e := range engines {
				for _, lvl := range levels {
					db, err := evalThrough(ctx, p, tr, e, lvl, nil)
					if litOutOfFragment(err) {
						continue
					}
					if err != nil {
						t.Fatalf("case %d: %v/%v failed: %v\nprogram:\n%s", i, e, lvl, err, p)
					}
					if diff := eval.SameResults(ref, db, preds); diff != "" {
						t.Fatalf("case %d: %v/%v diverges from naive/O0: %s\nprogram:\n%s\ntree: %s",
							i, e, lvl, diff, p, tr)
					}
				}
			}

			// Goal-directed variant: only the query predicate is
			// observable, which arms dead-rule elimination and inlining.
			want := fmt.Sprint(ref.UnarySet("p0"))
			for _, e := range engines {
				for _, lvl := range levels {
					db, err := evalThrough(ctx, p, tr, e, lvl, []string{"p0"})
					if litOutOfFragment(err) {
						continue
					}
					if err != nil {
						t.Fatalf("case %d: goal-directed %v/%v failed: %v\nprogram:\n%s", i, e, lvl, err, p)
					}
					if got := fmt.Sprint(db.UnarySet("p0")); got != want {
						t.Fatalf("case %d: goal-directed %v/%v selects %s, want %s\nprogram:\n%s\ntree: %s",
							i, e, lvl, got, want, p, tr)
					}
				}
			}

			// Fused-set variant: the three generated programs run as
			// one QuerySet pass and must agree with their individual
			// evaluations at both optimization levels, on both
			// grounding engines (all-linear and all-bitmap sets).
			for _, lvl := range levels {
				fuzzFusedSet(t, ctx, i, setMates, tr, lvl, EngineLinear)
				fuzzFusedSet(t, ctx, i, setMates, tr, lvl, EngineBitmap)
			}

			// Incremental arm: the same program delta-maintained on a
			// live document must match replay-from-scratch after each
			// edit window (tr is not used again after this).
			doc := NewDocument(tr)
			var incArms []*CompiledQuery
			for _, e := range []Engine{EngineLinear, EngineBitmap} {
				q, err := CompileProgram(p.Clone(), WithEngine(e), WithOptLevel(OptFull))
				if err != nil {
					t.Fatalf("case %d: compiling incremental %v arm: %v\nprogram:\n%s", i, e, err, p)
				}
				incArms = append(incArms, q)
			}
			for step := 0; step < 2; step++ {
				randomDocEdit(t, rng, doc, []string{"a", "b", "c"})
				want := fmt.Sprint(replayUnary(t, ctx, p, doc, []string{"p0"})["p0"])
				for _, q := range incArms {
					ids, err := q.SelectIncremental(ctx, doc)
					if err != nil {
						t.Fatalf("case %d step %d: incremental %s: %v\nprogram:\n%s", i, step, q.EngineName(), err, p)
					}
					if got := fmt.Sprint(ids); got != want {
						t.Fatalf("case %d step %d: incremental %s selects %s, replay %s\nprogram:\n%s",
							i, step, q.EngineName(), got, want, p)
					}
				}
			}
		}
	}
}
