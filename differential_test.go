package mdlog

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"

	"mdlog/internal/datalog"
	"mdlog/internal/eval"
	"mdlog/internal/opt"
	"mdlog/internal/refute"
	"mdlog/internal/span"
	"mdlog/internal/tree"
)

// Cross-engine differential fuzzing: random monadic programs over the
// full extensional vocabulary × random trees, evaluated by every
// engine at every optimization level through the one Compile entry
// point. All engines must agree on every visible relation — this is
// the semantics net under the optimizer and the engine zoo.
//
// The default iteration count keeps `go test ./...` fast; `make
// fuzz-smoke` raises it via MDLOG_FUZZ_N for a bounded CI fuzzing run.

// fuzzIterations reads MDLOG_FUZZ_N (default 60 programs).
func fuzzIterations(t *testing.T) int {
	if s := os.Getenv("MDLOG_FUZZ_N"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad MDLOG_FUZZ_N=%q", s)
		}
		return n
	}
	if testing.Short() {
		return 15
	}
	return 60
}

// fuzzVocabulary is the generator's alphabet: every unary and binary
// extensional predicate the engines accept, including the ones with
// special-case handling (child/2 forces the Theorem 5.2 rewrite on the
// linear route, child_k exercises τ_rk, dom the trivially-true check).
var (
	fuzzUnaryEDB = []string{"root", "leaf", "lastsibling", "firstsibling", "dom", "label_a", "label_b"}
	fuzzBinEDB   = []string{"firstchild", "nextsibling", "lastchild", "child", "child_2"}
	fuzzIDB      = []string{"p0", "p1", "p2", "p3"}
	fuzzVars     = []string{"X", "Y", "Z", "W"}
)

// randomMonadicProgram generates a safe monadic program with query
// predicate p0. Bodies mix extensional atoms, intensional atoms and
// the occasional propositional helper; the head variable is always
// bound by the first atom, and rules that end up unsafe are discarded.
func randomMonadicProgram(rng *rand.Rand) *datalog.Program {
	V, At, R := datalog.V, datalog.At, datalog.R
	p := &datalog.Program{Query: "p0"}
	nRules := 2 + rng.Intn(7)
	for len(p.Rules) < nRules {
		var head datalog.Atom
		if rng.Intn(8) == 0 {
			head = At("s" + strconv.Itoa(rng.Intn(2))) // propositional helper
		} else {
			head = At(fuzzIDB[rng.Intn(len(fuzzIDB))], V("X"))
		}
		var body []datalog.Atom
		add := func(v string) {
			switch rng.Intn(5) {
			case 0, 1:
				body = append(body, At(fuzzUnaryEDB[rng.Intn(len(fuzzUnaryEDB))], V(v)))
			case 2, 3:
				w := fuzzVars[rng.Intn(len(fuzzVars))]
				body = append(body, At(fuzzBinEDB[rng.Intn(len(fuzzBinEDB))], V(v), V(w)))
			default:
				body = append(body, At(fuzzIDB[rng.Intn(len(fuzzIDB))], V(v)))
			}
		}
		add("X") // bind the head variable first
		for extra := rng.Intn(3); extra > 0; extra-- {
			add(fuzzVars[rng.Intn(len(fuzzVars))])
		}
		if rng.Intn(6) == 0 {
			body = append(body, At("s"+strconv.Itoa(rng.Intn(2))))
		}
		r := R(head, body...)
		if r.IsSafe() {
			p.Add(r)
		}
	}
	return p
}

// evalThrough compiles p for one engine/level and evaluates it on tr,
// returning the visible relations.
func evalThrough(ctx context.Context, p *Program, tr *Tree, e Engine, lvl OptLevel, extract []string) (*Database, error) {
	opts := []Option{WithEngine(e), WithOptLevel(lvl), WithoutCache()}
	if len(extract) > 0 {
		opts = append(opts, WithExtract(extract...))
	}
	q, err := CompileProgram(p.Clone(), opts...)
	if err != nil {
		return nil, err
	}
	return q.Eval(ctx, tr)
}

// litOutOfFragment recognizes the LIT engine's documented rejection of
// programs outside Datalog LIT (Proposition 3.7) — a domain
// difference, not a divergence.
func litOutOfFragment(err error) bool {
	return err != nil && strings.Contains(err.Error(), "not in Datalog LIT")
}

// fuzzSeed reads MDLOG_FUZZ_SEED (default 1234), so a CI fuzzing run
// can explore fresh program/tree pairs while plain `go test` stays
// deterministic.
func fuzzSeed(t *testing.T) int64 {
	s := os.Getenv("MDLOG_FUZZ_SEED")
	if s == "" {
		return 1234
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("bad MDLOG_FUZZ_SEED=%q", s)
	}
	return n
}

// fuzzFusedSet builds a QuerySet over the generated programs at one
// optimization level, with every member on the given grounding engine,
// and requires every member's fused result to match its individual
// evaluation — all programs share the p0..p3/s0..s1 namespace, so this
// doubles as an apex-renaming capture test.
func fuzzFusedSet(t *testing.T, ctx context.Context, caseNo int, progs []*Program, tr *Tree, lvl OptLevel, engine Engine) {
	t.Helper()
	queries := make([]*CompiledQuery, len(progs))
	for j, p := range progs {
		q, err := CompileProgram(p.Clone(), WithOptLevel(lvl), WithEngine(engine), WithoutCache())
		if err != nil {
			t.Fatalf("case %d: compiling set member %d at %v/%v: %v\nprogram:\n%s", caseNo, j, engine, lvl, err, p)
		}
		queries[j] = q
	}
	set, err := NewQuerySet(queries...)
	if err != nil {
		t.Fatalf("case %d: fusing at %v/%v: %v", caseNo, engine, lvl, err)
	}
	if set.FusedLen() != len(progs) {
		t.Fatalf("case %d: fused %d of %d %v members", caseNo, set.FusedLen(), len(progs), engine)
	}
	results := set.Run(ctx, tr)
	for j, res := range results {
		if res.Err != nil {
			t.Fatalf("case %d: fused member %d at %v/%v: %v\nprogram:\n%s", caseNo, j, engine, lvl, res.Err, progs[j])
		}
		// An all-bitmap set must run its shared pass on the bitmap
		// engine (and an all-linear one on linear).
		if res.Stats.Engine != engine.String() {
			t.Fatalf("case %d: fused member %d served by %q, want %q", caseNo, j, res.Stats.Engine, engine)
		}
		ind, err := queries[j].Eval(ctx, tr)
		if err != nil {
			t.Fatalf("case %d: individual member %d at %v: %v", caseNo, j, lvl, err)
		}
		for _, pred := range progs[j].IntensionalPreds() {
			want := ind.UnarySet(pred)
			got := res.Assignment[pred]
			if fmt.Sprint(got) != fmt.Sprint(want) && (len(got) > 0 || len(want) > 0) {
				t.Fatalf("case %d: fused member %d at %v: %s = %v, individual %v\nprogram:\n%s\ntree: %s",
					caseNo, j, lvl, pred, got, want, progs[j], tr)
			}
		}
	}
}

func TestDifferentialEngines(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(fuzzSeed(t)))
	engines := []Engine{EngineLinear, EngineBitmap, EngineSemiNaive, EngineNaive, EngineLIT}
	levels := []OptLevel{OptNone, OptFull}
	iters := fuzzIterations(t)

	for i := 0; i < iters; i++ {
		p := randomMonadicProgram(rng)
		preds := p.IntensionalPreds()
		// Two more programs over the same predicate namespace for the
		// fused-set differential below.
		setMates := []*Program{p, randomMonadicProgram(rng), randomMonadicProgram(rng)}
		for d := 0; d < 2; d++ {
			tr := tree.Random(rng, tree.RandomOptions{
				Labels: []string{"a", "b", "c"}, Size: 15 + rng.Intn(45), MaxChildren: 5})

			// Reference semantics: the naive fixpoint without optimization.
			ref, err := evalThrough(ctx, p, tr, EngineNaive, OptNone, nil)
			if err != nil {
				t.Fatalf("case %d: reference engine failed: %v\nprogram:\n%s", i, err, p)
			}
			for _, e := range engines {
				for _, lvl := range levels {
					db, err := evalThrough(ctx, p, tr, e, lvl, nil)
					if litOutOfFragment(err) {
						continue
					}
					if err != nil {
						t.Fatalf("case %d: %v/%v failed: %v\nprogram:\n%s", i, e, lvl, err, p)
					}
					if diff := eval.SameResults(ref, db, preds); diff != "" {
						t.Fatalf("case %d: %v/%v diverges from naive/O0: %s\nprogram:\n%s\ntree: %s",
							i, e, lvl, diff, p, tr)
					}
				}
			}

			// Goal-directed variant: only the query predicate is
			// observable, which arms dead-rule elimination and inlining.
			want := fmt.Sprint(ref.UnarySet("p0"))
			for _, e := range engines {
				for _, lvl := range levels {
					db, err := evalThrough(ctx, p, tr, e, lvl, []string{"p0"})
					if litOutOfFragment(err) {
						continue
					}
					if err != nil {
						t.Fatalf("case %d: goal-directed %v/%v failed: %v\nprogram:\n%s", i, e, lvl, err, p)
					}
					if got := fmt.Sprint(db.UnarySet("p0")); got != want {
						t.Fatalf("case %d: goal-directed %v/%v selects %s, want %s\nprogram:\n%s\ntree: %s",
							i, e, lvl, got, want, p, tr)
					}
				}
			}

			// Fused-set variant: the three generated programs run as
			// one QuerySet pass and must agree with their individual
			// evaluations at both optimization levels, on both
			// grounding engines (all-linear and all-bitmap sets).
			for _, lvl := range levels {
				fuzzFusedSet(t, ctx, i, setMates, tr, lvl, EngineLinear)
				fuzzFusedSet(t, ctx, i, setMates, tr, lvl, EngineBitmap)
			}

			// Subsumption arm: a semantically identical variant of p
			// (implied duplicate conjuncts + defensive dom atoms) runs
			// beside the original in one QuerySet. Whether or not the
			// containment checker proves the equivalence (recursive
			// programs stay Unknown and evaluate normally), both
			// members must answer exactly like the reference, and
			// SubsumedRuns may be set only when Plans() reports the
			// member subsumed.
			for _, lvl := range levels {
				fuzzSubsumedPair(t, ctx, i, p, tr, lvl, want)
			}
			if d == 0 {
				fuzzCheckerSoundness(t, ctx, i, rng, p, tr, ref)
			}

			// Spanner arm: a random regex formula over a random tree with
			// random text/attribute content, end to end through
			// LangSpanner, against a naive reference.
			fuzzSpannerArm(t, ctx, i, rng)

			// Incremental arm: the same program delta-maintained on a
			// live document must match replay-from-scratch after each
			// edit window (tr is not used again after this).
			doc := NewDocument(tr)
			var incArms []*CompiledQuery
			for _, e := range []Engine{EngineLinear, EngineBitmap} {
				q, err := CompileProgram(p.Clone(), WithEngine(e), WithOptLevel(OptFull))
				if err != nil {
					t.Fatalf("case %d: compiling incremental %v arm: %v\nprogram:\n%s", i, e, err, p)
				}
				incArms = append(incArms, q)
			}
			for step := 0; step < 2; step++ {
				randomDocEdit(t, rng, doc, []string{"a", "b", "c"})
				want := fmt.Sprint(replayUnary(t, ctx, p, doc, []string{"p0"})["p0"])
				for _, q := range incArms {
					ids, err := q.SelectIncremental(ctx, doc)
					if err != nil {
						t.Fatalf("case %d step %d: incremental %s: %v\nprogram:\n%s", i, step, q.EngineName(), err, p)
					}
					if got := fmt.Sprint(ids); got != want {
						t.Fatalf("case %d step %d: incremental %s selects %s, replay %s\nprogram:\n%s",
							i, step, q.EngineName(), got, want, p)
					}
				}
			}
		}
	}
}

// fuzzSpannerArm is the spanner differential: a random regex formula
// over a random tree whose nodes carry random text and attribute
// values, compiled through LangSpanner on both grounding engines at
// both optimization levels. The reference is assembled naively — the
// candidate node set from the naive engine at O0, and the span tuples
// from Formula.NaiveEnumerate (the backtracking matcher the vset
// automaton must agree with) over each candidate's character data.
func fuzzSpannerArm(t *testing.T, ctx context.Context, caseNo int, rng *rand.Rand) {
	t.Helper()
	fsrc := span.RandomFormula(rng, 2)
	f, err := span.ParseFormula(fsrc)
	if err != nil {
		t.Fatalf("case %d: random formula /%s/ does not parse: %v", caseNo, fsrc, err)
	}
	tr := tree.Random(rng, tree.RandomOptions{
		Labels: []string{"a", "b", "c"}, Size: 8 + rng.Intn(16), MaxChildren: 4})
	for _, n := range tr.Nodes {
		if rng.Intn(4) > 0 {
			n.Text = span.RandomText(rng, 10)
		}
		if rng.Intn(3) == 0 {
			n.Attrs = map[string]string{"k": span.RandomText(rng, 10)}
		}
	}

	// One text rule gated on a random unary EDB condition, one attr
	// rule over the whole domain; both heads emit the source span plus
	// every capture variable.
	cond := fuzzUnaryEDB[rng.Intn(len(fuzzUnaryEDB))]
	var heads, outs strings.Builder
	for i := range f.Vars {
		fmt.Fprintf(&heads, ", V%d", i)
		fmt.Fprintf(&outs, ", V%d", i)
	}
	src := fmt.Sprintf(`
		cand(X) :- %s(X).
		sp(X, S%s) :- cand(X), text(X, S), match(S, /%s/%s).
		spa(X, A%s) :- attr(X, "k", A), match(A, /%s/%s).
		?- cand.
	`, cond, heads.String(), fsrc, outs.String(), heads.String(), fsrc, outs.String())

	// Naive reference rows, encoded "node [s e] [s e]...".
	naiveRows := func(ids []int, data func(int) (string, bool)) []string {
		seen := map[string]bool{}
		var rows []string
		for _, id := range ids {
			text, ok := data(id)
			if !ok {
				continue
			}
			for _, marks := range f.NaiveEnumerate(text) {
				row := fmt.Sprintf("%d [0 %d]", id, len(text))
				for v := range f.Vars {
					row += fmt.Sprintf(" [%d %d]", marks[2*v], marks[2*v+1])
				}
				if !seen[row] {
					seen[row] = true
					rows = append(rows, row)
				}
			}
		}
		sort.Strings(rows)
		return rows
	}
	nq, err := Compile(fmt.Sprintf("cand(X) :- %s(X). ?- cand.", cond), LangDatalog,
		WithEngine(EngineNaive), WithOptLevel(OptNone), WithoutCache())
	if err != nil {
		t.Fatalf("case %d: compiling reference candidates: %v", caseNo, err)
	}
	cands, err := nq.Select(ctx, tr)
	if err != nil {
		t.Fatalf("case %d: reference candidates: %v", caseNo, err)
	}
	all := make([]int, len(tr.Nodes))
	for i := range all {
		all[i] = i
	}
	// text(X, S) fails on a node without character data (an empty attr
	// value, by contrast, is a present value) — mirror that here.
	wantSp := naiveRows(cands, func(id int) (string, bool) {
		return tr.Nodes[id].Text, tr.Nodes[id].Text != ""
	})
	wantSpa := naiveRows(all, func(id int) (string, bool) {
		v, ok := tr.Nodes[id].Attrs["k"]
		return v, ok
	})

	gotRows := func(res SpanResult, rel string) []string {
		var rows []string
		if r := res.Rel(rel); r != nil {
			for _, row := range r.Rows {
				s := fmt.Sprint(row.Node)
				for _, sp := range row.Spans {
					s += fmt.Sprintf(" [%d %d]", sp.Start, sp.End)
				}
				rows = append(rows, s)
			}
		}
		sort.Strings(rows)
		return rows
	}
	for _, e := range []Engine{EngineLinear, EngineBitmap} {
		for _, lvl := range []OptLevel{OptNone, OptFull} {
			q, err := Compile(src, LangSpanner, WithEngine(e), WithOptLevel(lvl), WithoutCache())
			if err != nil {
				t.Fatalf("case %d: spanner %v/%v compile: %v\nprogram:\n%s", caseNo, e, lvl, err, src)
			}
			res, err := q.Spans(ctx, tr)
			if err != nil {
				t.Fatalf("case %d: spanner %v/%v run: %v\nprogram:\n%s", caseNo, e, lvl, err, src)
			}
			for rel, want := range map[string][]string{"sp": wantSp, "spa": wantSpa} {
				if got := gotRows(res, rel); fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("case %d: spanner %v/%v %s = %v, naive reference %v\nformula: /%s/\nprogram:\n%s\ntree: %s",
						caseNo, e, lvl, rel, got, want, fsrc, src, tr)
				}
			}
		}
	}
}

// subsumeVariant builds a semantically identical restatement of p: in
// every rule body, the first atom is duplicated with all its variables
// renamed fresh (a conjunct implied by the original body never changes
// the derived heads, stage by stage of the fixpoint), and unary heads
// get a defensive dom atom over the head variable (dom is the full
// domain on every tree). Neither change is α-invisible, so plain dedup
// cannot merge the variant with p — only the containment checker can.
func subsumeVariant(p *Program) *Program {
	out := p.Clone()
	n := 0
	for ri := range out.Rules {
		r := &out.Rules[ri]
		if len(r.Body) == 0 {
			continue
		}
		n++
		cp := r.Body[0].Clone()
		for j, tm := range cp.Args {
			if tm.IsVar() {
				cp.Args[j] = datalog.V(fmt.Sprintf("%s_dup%d", tm.Var, n))
			}
		}
		r.Body = append(r.Body, cp)
		if len(r.Head.Args) == 1 && r.Head.Args[0].IsVar() {
			r.Body = append(r.Body, datalog.At("dom", r.Head.Args[0]))
		}
	}
	return out
}

// fuzzSubsumedPair runs p and its subsumeVariant as one QuerySet and
// requires (a) both members answer the reference p0 set, (b) the
// SubsumedRuns flag agrees with the compile-time Plans() decision, and
// (c) a subsumed member's whole assignment matches its individual
// evaluation (the projection path hides no relation).
func fuzzSubsumedPair(t *testing.T, ctx context.Context, caseNo int, p *Program, tr *Tree, lvl OptLevel, want string) {
	t.Helper()
	variant := subsumeVariant(p)
	q1, err := CompileProgram(p.Clone(), WithOptLevel(lvl), WithoutCache())
	if err != nil {
		t.Fatalf("case %d: compiling original at %v: %v\nprogram:\n%s", caseNo, lvl, err, p)
	}
	q2, err := CompileProgram(variant.Clone(), WithOptLevel(lvl), WithoutCache())
	if err != nil {
		t.Fatalf("case %d: compiling variant at %v: %v\nprogram:\n%s", caseNo, lvl, err, variant)
	}
	set, err := NewNamedQuerySet(
		NamedQuery{Name: "orig", Query: q1},
		NamedQuery{Name: "variant", Query: q2},
	)
	if err != nil {
		t.Fatalf("case %d: fusing subsumption pair at %v: %v", caseNo, lvl, err)
	}
	plans := set.Plans()
	res := set.Run(ctx, tr)
	for j, r := range res {
		if r.Err != nil {
			t.Fatalf("case %d: subsumption pair member %d at %v: %v\nprogram:\n%s", caseNo, j, lvl, r.Err, variant)
		}
		if got := fmt.Sprint(r.IDs); got != want {
			t.Fatalf("case %d: subsumption pair member %s at %v selects %s, want %s\noriginal:\n%s\nvariant:\n%s\ntree: %s",
				caseNo, r.Name, lvl, got, want, p, variant, tr)
		}
		wantSub := int64(0)
		if plans[j].Subsumed {
			wantSub = 1
		}
		if r.Stats.SubsumedRuns != wantSub {
			t.Fatalf("case %d: member %s SubsumedRuns=%d, plan %+v", caseNo, r.Name, r.Stats.SubsumedRuns, plans[j])
		}
	}
	// The variant's full assignment must match its own individual
	// evaluation even when served by projection.
	ind, err := q2.Eval(ctx, tr)
	if err != nil {
		t.Fatalf("case %d: individual variant at %v: %v", caseNo, lvl, err)
	}
	for _, pred := range variant.IntensionalPreds() {
		got, wantIDs := res[1].Assignment[pred], ind.UnarySet(pred)
		if fmt.Sprint(got) != fmt.Sprint(wantIDs) && (len(got) > 0 || len(wantIDs) > 0) {
			t.Fatalf("case %d: variant %s = %v via set, %v individually\nvariant:\n%s", caseNo, pred, got, wantIDs, variant)
		}
	}
}

// fuzzCheckerSoundness cross-examines the containment checker on a
// pair with known semantics: ext = p plus extra rules, so p ⊆ ext
// holds on every tree. A NotContained verdict in that direction is a
// checker bug; a Contained verdict in either direction is re-verified
// by evaluation on tr; a NotContained verdict for ext ⊆ p must carry a
// witness that separates the two programs when re-evaluated.
func fuzzCheckerSoundness(t *testing.T, ctx context.Context, caseNo int, rng *rand.Rand, p *Program, tr *Tree, ref *Database) {
	t.Helper()
	ext := p.Clone()
	extra := randomMonadicProgram(rng)
	ext.Rules = append(ext.Rules, extra.Rules...)
	copts := &opt.ContainOptions{Refute: refute.Options{Trees: 60}}

	evalP0 := func(prog *Program) map[int]bool {
		db, err := evalThrough(ctx, prog, tr, EngineSemiNaive, OptNone, nil)
		if err != nil {
			t.Fatalf("case %d: evaluating for checker verification: %v\nprogram:\n%s", caseNo, err, prog)
		}
		out := map[int]bool{}
		for _, v := range db.UnarySet("p0") {
			out[v] = true
		}
		return out
	}

	r, _ := opt.CheckContainment(p, "p0", ext, "p0", copts)
	if r == opt.NotContained {
		t.Fatalf("case %d: checker refuted p ⊆ p+rules, which holds universally\np:\n%s\next:\n%s", caseNo, p, ext)
	}
	if r == opt.Contained {
		sup := evalP0(ext)
		for v := range evalP0(p) {
			if !sup[v] {
				t.Fatalf("case %d: checker proved p ⊆ ext but node %d violates it on tr\np:\n%s\next:\n%s\ntree: %s",
					caseNo, v, p, ext, tr)
			}
		}
	}

	rBack, w := opt.CheckContainment(ext, "p0", p, "p0", copts)
	switch rBack {
	case opt.Contained:
		sub := evalP0(p)
		for v := range evalP0(ext) {
			if !sub[v] {
				t.Fatalf("case %d: checker proved ext ⊆ p but node %d violates it on tr\np:\n%s\next:\n%s\ntree: %s",
					caseNo, v, p, ext, tr)
			}
		}
	case opt.NotContained:
		if w == nil || w.Tree == nil {
			t.Fatalf("case %d: NotContained without witness", caseNo)
		}
		db1, err := eval.EvalOnTree(ext, w.Tree, eval.EngineSemiNaive)
		if err != nil {
			t.Fatalf("case %d: re-evaluating witness: %v", caseNo, err)
		}
		db2, err := eval.EvalOnTree(p, w.Tree, eval.EngineSemiNaive)
		if err != nil {
			t.Fatalf("case %d: re-evaluating witness: %v", caseNo, err)
		}
		in := func(vs []int, n int) bool {
			for _, v := range vs {
				if v == n {
					return true
				}
			}
			return false
		}
		if !in(db1.UnarySet("p0"), w.Node) || in(db2.UnarySet("p0"), w.Node) {
			t.Fatalf("case %d: witness node %d does not separate ext from p\np:\n%s\next:\n%s\nwitness tree: %s",
				caseNo, w.Node, p, ext, w.Tree)
		}
	}
}
