// Benchmarks regenerating the paper's quantitative claims, one per
// experiment id of DESIGN.md §3 (run `go test -bench=. -benchmem`).
// cmd/benchtables prints the same measurements as Markdown tables for
// EXPERIMENTS.md.
package mdlog

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"

	"mdlog/internal/datalog"
	"mdlog/internal/elog"
	"mdlog/internal/eval"
	"mdlog/internal/html"
	"mdlog/internal/mso"
	"mdlog/internal/paperex"
	"mdlog/internal/qa"
	"mdlog/internal/tmnf"
	"mdlog/internal/tree"
	"mdlog/internal/xpath"
)

// BenchmarkTheorem42Data — CLAIM-T42 (data axis): linear-time combined
// complexity of monadic datalog over trees.
func BenchmarkTheorem42Data(b *testing.B) {
	p := paperex.EvenAProgram("b")
	for _, n := range []int{1000, 4000, 16000} {
		rng := rand.New(rand.NewSource(42))
		tr := tree.Random(rng, tree.RandomOptions{Labels: []string{"a", "b"}, Size: n, MaxChildren: 5})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.LinearTree(p, tr); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/node")
		})
	}
}

// BenchmarkTheorem42Program — CLAIM-T42 (program axis).
func BenchmarkTheorem42Program(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	tr := tree.Random(rng, tree.RandomOptions{Labels: []string{"a", "b"}, Size: 4000, MaxChildren: 5})
	for _, rules := range []int{16, 64, 256} {
		p := benchProgramOfSize(rules)
		b.Run(fmt.Sprintf("rules=%d", rules), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.LinearTree(p, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchProgramOfSize(rules int) *datalog.Program {
	p := &datalog.Program{}
	V, At, R := datalog.V, datalog.At, datalog.R
	p.Add(R(At("p0", V("X")), At("leaf", V("X"))))
	i := 0
	for len(p.Rules) < rules {
		cur := fmt.Sprintf("p%d", i+1)
		prev := fmt.Sprintf("p%d", i)
		switch i % 3 {
		case 0:
			p.Add(R(At(cur, V("X")), At("firstchild", V("X"), V("Y")), At(prev, V("Y"))))
		case 1:
			p.Add(R(At(cur, V("X")), At("nextsibling", V("X"), V("Y")), At(prev, V("Y"))))
		default:
			p.Add(R(At(cur, V("X")), At(prev, V("X")), At("label_a", V("X"))))
		}
		i++
	}
	return p
}

// BenchmarkGenericVsTreeEngine — ABLATION-engines: what the Theorem
// 4.2 restriction buys over generic datalog evaluation.
func BenchmarkGenericVsTreeEngine(b *testing.B) {
	p := paperex.EvenAProgram("b")
	rng := rand.New(rand.NewSource(44))
	tr := tree.Random(rng, tree.RandomOptions{Labels: []string{"a", "b"}, Size: 1000, MaxChildren: 5})
	for _, eng := range []eval.Engine{eval.EngineLinear, eval.EngineLIT, eval.EngineSemiNaive, eval.EngineNaive} {
		engine := eng
		b.Run(engine.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.EvalOnTree(p, tr, engine); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGroundLinear — CLAIM-GROUND: Proposition 3.5.
func BenchmarkGroundLinear(b *testing.B) {
	for _, m := range []int{10000, 40000} {
		p := &datalog.Program{}
		p.Add(datalog.R(datalog.At("p", datalog.C(0))))
		for i := 1; i < m; i++ {
			p.Add(datalog.R(datalog.At("p", datalog.C(i)), datalog.At("p", datalog.C(i-1))))
		}
		db := datalog.NewDatabase(m)
		b.Run(fmt.Sprintf("clauses=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.GroundEval(p, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGuardedEval — CLAIM-GUARD: Proposition 3.6.
func BenchmarkGuardedEval(b *testing.B) {
	p := datalog.MustParseProgram(`
sel(X) :- e(X,Y), good(Y).
sel(Y) :- e(X,Y), sel(X).
`)
	for _, m := range []int{10000, 40000} {
		rng := rand.New(rand.NewSource(45))
		db := datalog.NewDatabase(m)
		for i := 0; i < m; i++ {
			db.Add("e", rng.Intn(m), rng.Intn(m))
		}
		db.Add("good", rng.Intn(m))
		b.Run(fmt.Sprintf("tuples=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.GuardedEval(p, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLITEval — CLAIM-LIT: Proposition 3.7.
func BenchmarkLITEval(b *testing.B) {
	p := paperex.EvenAProgram("b")
	rng := rand.New(rand.NewSource(48))
	tr := tree.Random(rng, tree.RandomOptions{Labels: []string{"a", "b"}, Size: 2000, MaxChildren: 5})
	db := eval.TreeDB(tr, eval.WithDom())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.LITEval(p, db); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExample421 — FIG-EX421: direct QA runs (superpolynomial)
// vs the Theorem 4.11 translation (linear).
func BenchmarkExample421(b *testing.B) {
	a := qa.Example421(1)
	prog := a.ToDatalog("query")
	for _, depth := range []int{5, 7, 9} {
		tr := tree.CompleteBinary(depth, "a")
		b.Run(fmt.Sprintf("direct/depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := a.Run(tr, qa.RunOptions{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(qa.Example421Steps(1, depth)), "QA-steps")
		})
		b.Run(fmt.Sprintf("datalog/depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.LinearTree(prog, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQArTranslation — CLAIM-T411: translation cost and size.
func BenchmarkQArTranslation(b *testing.B) {
	for _, alpha := range []int{1, 2} {
		a := qa.Example421(alpha)
		b.Run(fmt.Sprintf("alpha=%d", alpha), func(b *testing.B) {
			var rules int
			for i := 0; i < b.N; i++ {
				rules = len(a.ToDatalog("query").Rules)
			}
			b.ReportMetric(float64(rules), "rules")
		})
	}
}

// BenchmarkTMNFTransform — CLAIM-T52: the Theorem 5.2 pipeline.
func BenchmarkTMNFTransform(b *testing.B) {
	for _, m := range []int{50, 200} {
		p := &datalog.Program{}
		V, At, R := datalog.V, datalog.At, datalog.R
		for i := 0; i < m; i++ {
			cur := fmt.Sprintf("q%d", i)
			prev := "leaf"
			if i > 0 {
				prev = fmt.Sprintf("q%d", i-1)
			}
			p.Add(R(At(cur, V("X")),
				At("child", V("X"), V("Y")), At(prev, V("Y")),
				At("child", V("X"), V("Z")), At("label_a", V("Z"))))
		}
		b.Run(fmt.Sprintf("rules=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tmnf.Transform(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTMNFThenLinearVsGeneric — ABLATION: evaluating a child-
// using program by TMNF + linear engine vs generic semi-naive.
func BenchmarkTMNFThenLinearVsGeneric(b *testing.B) {
	p := datalog.MustParseProgram(`
q(X) :- child(X,Y), child(Y,Z), label_a(Z).
`)
	rng := rand.New(rand.NewSource(49))
	tr := tree.Random(rng, tree.RandomOptions{Labels: []string{"a", "b"}, Size: 2000, MaxChildren: 5})
	tp, err := tmnf.Transform(p)
	if err != nil {
		b.Fatal(err)
	}
	db := eval.TreeDB(tr, eval.WithChild())
	b.Run("tmnf+linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.LinearTree(tp, tr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("generic-seminaive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := datalog.SemiNaiveEval(p, db); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkElogEval — CLAIM-C64: compiled Elog⁻ wrappers on synthetic
// product pages.
func BenchmarkElogEval(b *testing.B) {
	prog := elog.MustParseProgram(`
item(x)   :- root(x0), subelem("html.body.table.tr", x0, x).
name(x)   :- item(x0), subelem("td.#text", x0, x), firstsibling(x).
price(x)  :- item(x0), subelem("td.b.#text", x0, x).
`)
	compiled, err := prog.CompileLinear()
	if err != nil {
		b.Fatal(err)
	}
	for _, rows := range []int{200, 800} {
		rng := rand.New(rand.NewSource(46))
		doc := html.Parse(html.ProductListing(rng, rows))
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.LinearTree(compiled, doc); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(doc.Size()), "ns/node")
		})
	}
}

// BenchmarkMSOCompileBlowup — FIG-MSO-cost: quantifier alternation
// drives the automaton construction; evaluation stays linear.
func BenchmarkMSOCompileBlowup(b *testing.B) {
	queries := []string{
		"leaf(x)",
		"exists y1 (child(x,y1) & (leaf(y1) | label_a(y1)))",
		"forall y2 (child(x,y2) -> exists y1 (child(y2,y1) & (leaf(y1) | label_a(y1))))",
	}
	for k, src := range queries {
		f := mso.MustParse(src)
		b.Run(fmt.Sprintf("compile/alt=%d", k), func(b *testing.B) {
			var states int
			for i := 0; i < b.N; i++ {
				q, err := mso.CompileQuery(f)
				if err != nil {
					b.Fatal(err)
				}
				states = q.C.DTA.NumStates
			}
			b.ReportMetric(float64(states), "states")
		})
	}
	// Evaluation cost after compilation.
	q := mso.MustCompileQuery(queries[2])
	rng := rand.New(rand.NewSource(47))
	tr := tree.Random(rng, tree.RandomOptions{Labels: []string{"a", "b"}, Size: 3000, MaxChildren: 4})
	b.Run("eval/alt=2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q.Select(tr)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(tr.Size()), "ns/node")
	})
}

// BenchmarkSemiNaiveVsNaive — ABLATION: the delta optimization in the
// generic engine.
func BenchmarkSemiNaiveVsNaive(b *testing.B) {
	p := datalog.MustParseProgram(`
tc(X,Y) :- e(X,Y).
tc(X,Z) :- tc(X,Y), e(Y,Z).
`)
	db := datalog.NewDatabase(300)
	for i := 0; i < 299; i++ {
		db.Add("e", i, i+1)
	}
	b.Run("seminaive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := datalog.SemiNaiveEval(p, db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := datalog.NaiveEval(p, db); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkXPathBridge — EXT-XPATH: Core XPath through the full
// datalog/TMNF/linear pipeline vs the direct evaluator.
func BenchmarkXPathBridge(b *testing.B) {
	q := xpath.MustParse("//tr[td/b]/td")
	rng := rand.New(rand.NewSource(51))
	doc := html.Parse(html.ProductListing(rng, 400))
	prog, err := xpath.ToDatalog(q, "q")
	if err != nil {
		b.Fatal(err)
	}
	tp, err := tmnf.Transform(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			xpath.Select(q, doc)
		}
	})
	b.Run("datalog-linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.LinearTree(tp, doc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompileOnceAmortization — EXT-AMORTIZE: what the unified
// compile-once/run-many API buys. "legacy" re-prepares the program and
// navigation arrays and re-solves on every call (the old free-function
// path); "compiled" reuses one CompiledQuery whose TreeCache memoizes
// per-document state and the per-(query, tree) result; "compiled-
// nocache" isolates plan reuse alone from the memoization.
func BenchmarkCompileOnceAmortization(b *testing.B) {
	ctx := context.Background()
	p := paperex.EvenAProgram("b")
	for _, n := range []int{1000, 8000} {
		rng := rand.New(rand.NewSource(42))
		tr := tree.Random(rng, tree.RandomOptions{Labels: []string{"a", "b"}, Size: n, MaxChildren: 5})
		b.Run(fmt.Sprintf("legacy/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.Query(p, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("compiled/n=%d", n), func(b *testing.B) {
			q, err := CompileProgram(p)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.Select(ctx, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("compiled-nocache/n=%d", n), func(b *testing.B) {
			q, err := CompileProgram(p, WithoutCache())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.Select(ctx, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunnerFanOut — EXT-RUNNER: one compiled Elog⁻ wrapper
// fanned over a batch of product pages, sequential vs worker pool.
func BenchmarkRunnerFanOut(b *testing.B) {
	ctx := context.Background()
	q, err := Compile(`
item(x)   :- root(x0), subelem("html.body.table.tr", x0, x).
price(x)  :- item(x0), subelem("td.b.#text", x0, x).
`, LangElog, WithQueryPred("item"), WithoutCache())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(46))
	docs := make([]*Tree, 16)
	for i := range docs {
		docs[i] = ParseHTML(html.ProductListing(rng, 100))
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r := Runner{Workers: workers}
			for i := 0; i < b.N; i++ {
				for _, res := range r.SelectAll(ctx, q, docs) {
					if res.Err != nil {
						b.Fatal(res.Err)
					}
				}
			}
		})
	}
}

// BenchmarkCaterpillarDocumentOrder — EX-2.5: evaluating the document
// order caterpillar from the root.
func BenchmarkCaterpillarDocumentOrder(b *testing.B) {
	// SelectFromRoot of ≺ reaches every node but the root.
	rng := rand.New(rand.NewSource(50))
	tr := tree.Random(rng, tree.RandomOptions{Labels: []string{"a"}, Size: 2000, MaxChildren: 4})
	e := mustCat("child+ | (child^-1)*.nextsibling+.child*")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(selectRoot(e, tr)); got != tr.Size()-1 {
			b.Fatalf("got %d", got)
		}
	}
}

// wideListing returns a product-listing page with roughly the given
// node count (the wide, shallow shape of real catalog pages).
func wideListing(nodes int) string {
	rng := rand.New(rand.NewSource(52))
	return html.ProductListing(rng, nodes/9)
}

// BenchmarkArenaSubstrate — EXT-ARENA: the full repeated-Select
// pipeline (parse → materialize → eval) on a wide ~100k-node document.
// Three lanes share one compiled plan, so the delta is pure substrate:
//
//   - "arena": the rewired hot path — ParseArena streams the source
//     into the struct-of-arrays representation and the engine indexes
//     its columns directly (NavOf), no *Node view at all. This is the
//     lane the ≥2x acceptance criterion measures.
//   - "arena+view": ParseReader additionally materializes the *Node
//     compatibility view (slab-allocated) before evaluating.
//   - "pointer-baseline": the pre-arena path — pointer-per-node parse
//     (ParseNodes), navigation arrays rebuilt by walking *Node
//     pointers (NewNavFromNodes).
func BenchmarkArenaSubstrate(b *testing.B) {
	src := wideListing(100_000)
	prog := datalog.MustParseProgram(`
q(X) :- label_td(X), firstchild(X,Y), label_b(Y).
?- q.
`)
	pl, err := eval.NewPlan(prog)
	if err != nil {
		b.Fatal(err)
	}
	nodes := html.Parse(src).Size()
	b.Run("arena", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a, err := html.ParseArena(strings.NewReader(src))
			if err != nil {
				b.Fatal(err)
			}
			db, err := pl.Run(eval.NavOf(a))
			if err != nil {
				b.Fatal(err)
			}
			if len(db.UnarySet("q")) == 0 {
				b.Fatal("no results")
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(nodes), "ns/node")
	})
	b.Run("arena+view", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			doc, err := html.ParseReader(strings.NewReader(src))
			if err != nil {
				b.Fatal(err)
			}
			db, err := pl.Run(eval.NewNav(doc))
			if err != nil {
				b.Fatal(err)
			}
			if len(db.UnarySet("q")) == 0 {
				b.Fatal("no results")
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(nodes), "ns/node")
	})
	b.Run("pointer-baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			doc := html.ParseNodes(src)
			db, err := pl.Run(eval.NewNavFromNodes(doc))
			if err != nil {
				b.Fatal(err)
			}
			if len(db.UnarySet("q")) == 0 {
				b.Fatal("no results")
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(nodes), "ns/node")
	})
}

// BenchmarkHTMLStreamIngestion — EXT-SERVICE (library side): the
// ingestion fan-out under mdlogd's /batch endpoint. A batch of raw
// HTML pages is pushed through Runner.SelectHTMLStream, so tokenize →
// arena-build → evaluate all run inside the worker pool; the
// sequential lane is the same pipeline without the pool.
func BenchmarkHTMLStreamIngestion(b *testing.B) {
	ctx := context.Background()
	q, err := Compile("//tr[td/b]/td", LangXPath, WithoutCache())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(62))
	pages := make([]string, 16)
	for i := range pages {
		pages[i] = html.ProductListing(rng, 100)
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range pages {
				doc, err := ParseHTMLReader(strings.NewReader(p))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := q.Select(ctx, doc); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("stream/workers=%d", workers), func(b *testing.B) {
			r := Runner{Workers: workers}
			for i := 0; i < b.N; i++ {
				srcs := make(chan io.Reader, len(pages))
				for _, p := range pages {
					srcs <- strings.NewReader(p)
				}
				close(srcs)
				for res := range r.SelectHTMLStream(ctx, q, srcs) {
					if res.Err != nil {
						b.Fatal(res.Err)
					}
				}
			}
		})
	}
}

// BenchmarkStatsRecordParallel hammers the aggregate-stats hot path:
// every worker's run is a result-memo hit, so recording the run is the
// only shared write left. With the former mutex this serialized a
// 16-way fan-out; atomic counters keep the workers independent.
func BenchmarkStatsRecordParallel(b *testing.B) {
	ctx := context.Background()
	q, err := Compile(`//td[b]`, LangXPath)
	if err != nil {
		b.Fatal(err)
	}
	doc := ParseHTML(html.ProductListing(rand.New(rand.NewSource(7)), 200))
	if _, err := q.Select(ctx, doc); err != nil { // prime the memo
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := q.SelectStats(ctx, doc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRunnerFanout16 drives a 16-way Runner fan-out over memoized
// documents end to end — the serving shape whose throughput the
// aggregate-stats mutex used to cap.
func BenchmarkRunnerFanout16(b *testing.B) {
	ctx := context.Background()
	q, err := Compile(`//td[b]`, LangXPath, WithCache(NewTreeCache(0)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	docs := make([]*Tree, 64)
	for i := range docs {
		docs[i] = ParseHTML(html.ProductListing(rng, 50))
	}
	r := Runner{Workers: 16}
	for _, res := range r.SelectAll(ctx, q, docs) { // prime the memo
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, res := range r.SelectAll(ctx, q, docs) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
}
